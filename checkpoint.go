package fishstore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fishstore/internal/epoch"
	"fishstore/internal/expr"
	"fishstore/internal/hashtable"
	"fishstore/internal/hlog"
	"fishstore/internal/metrics"
	"fishstore/internal/parser"
	"fishstore/internal/psf"
	"fishstore/internal/record"
	"fishstore/internal/storage"
	"fishstore/internal/telemetry"
)

// Manifest is the checkpoint metadata written alongside the hash-table
// image (Appendix E).
type Manifest struct {
	// Tail is the log address the checkpoint covers: the hash-table image
	// contains every chain link below it, and the log is durable below it.
	Tail uint64
	// PageBits / MemPages pin the log geometry; recovery validates them.
	PageBits uint
	MemPages int
	// PSFs is the registry snapshot.
	PSFs []psf.SnapshotEntry
	// Counters restored into Stats.
	IngestedRecords int64
	IngestedBytes   int64
}

const (
	manifestFile = "MANIFEST.json"
	tableFile    = "hash.ckpt"
)

// fsyncFile is swappable so tests can observe which checkpoint artifacts are
// forced to stable media.
var fsyncFile = func(f *os.File) error { return f.Sync() }

// writeFileDurable writes path atomically: the payload goes to path+".tmp",
// is fsynced, and is renamed over path only once it is fully on stable media.
func writeFileDurable(path string, write func(*os.File) (int64, error)) (int64, error) {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return 0, err
	}
	n, err := write(f)
	if err == nil {
		err = fsyncFile(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path + ".tmp")
		return n, err
	}
	return n, os.Rename(path+".tmp", path)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = fsyncFile(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadManifest reads and decodes the manifest of a checkpoint directory.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("fishstore: bad manifest: %w", err)
	}
	return m, nil
}

// Checkpoint persists a consistent cut of the store into dir: the durable
// log prefix plus an image of the hash index, so recovery can skip
// rebuilding chains for everything below the checkpoint tail.
//
// The paper's C++ implementation takes a *fuzzy* checkpoint using FASTER's
// version-stamped epoch machinery; here the cut is made by briefly holding
// the store's ingestion barrier (milliseconds — the table write dominates),
// which preserves the measured behaviour of Fig 20: checkpoint cost scales
// with hash-table size, recovery cost with the log suffix ingested since
// the last checkpoint.
func (s *Store) Checkpoint(dir string) error {
	return s.CheckpointContext(nil, dir)
}

// CheckpointContext is Checkpoint with cancellation. The cut is abandoned at
// artifact boundaries only — a cancelled checkpoint leaves either the old
// checkpoint directory or the new one, never a half-written cut, and the
// store itself is untouched (the log flush that already landed simply makes
// the next attempt cheaper).
func (s *Store) CheckpointContext(ctx context.Context, dir string) error {
	if s.degraded.Load() {
		return ErrDegraded
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// The barrier may have been held for a while by ingestion; re-check
	// before doing any work under it.
	if err := ctxErr(ctx); err != nil {
		return err
	}

	if pl := s.plabels; pl != nil {
		pl.set(pl.checkpoint)
		defer pl.clear()
	}
	start := time.Now()
	tail := s.log.TailAddress()
	sp := s.tracer.StartRoot("checkpoint")
	sp.SetUint("tail", tail)
	defer sp.End()
	s.metrics.reg.Trace("checkpoint.begin", metrics.F("tail", tail))
	fsp := sp.Child("checkpoint.flush")
	//lint:ignore puborder the checkpoint barrier is the semantic: ingestion holds ckptMu shared and MUST quiesce until the flush lands, or the manifest's durable-below-tail claim is false
	if err := s.log.FlushTail(); err != nil {
		fsp.End()
		// The device permanently refused a log write (transient faults were
		// retried below when IORetry is configured): no future checkpoint can
		// succeed and ingestion can no longer be persisted. Degrade.
		s.enterDegraded(fmt.Errorf("checkpoint flush: %w", err))
		return fmt.Errorf("fishstore: checkpoint flush: %w", err)
	}
	// The manifest claims the log is durable below tail; force the device's
	// write cache to stable media before any artifact can make that claim.
	//lint:ignore puborder same barrier: the sync must complete before ingestion resumes past the checkpointed tail
	if err := storage.Sync(s.log.Device()); err != nil {
		fsp.End()
		s.enterDegraded(fmt.Errorf("checkpoint log sync: %w", err))
		return fmt.Errorf("fishstore: checkpoint log sync: %w", err)
	}
	fsp.End()

	// The flush and sync are never abandoned mid-way (the durability barrier
	// must hold), but the expensive table image can be skipped entirely.
	if err := ctxErr(ctx); err != nil {
		return err
	}

	// Both artifacts are written to a temp file, fsynced, then renamed over
	// the previous image, so a crash at any point leaves either the old
	// checkpoint or the new one — never a half-written table or manifest.
	// The table is renamed first: a new table with the old manifest is still
	// consistent, because replay's head installation is a monotonic CAS.
	tablePath := filepath.Join(dir, tableFile)
	tbsp := sp.Child("checkpoint.table")
	tableBytes, err := writeFileDurable(tablePath, func(f *os.File) (int64, error) {
		return s.table.WriteTo(f)
	})
	tbsp.SetInt("bytes", tableBytes)
	tbsp.End()
	if err != nil {
		return fmt.Errorf("fishstore: checkpoint table: %w", err)
	}

	// Last abandon point: the table rename already happened, but a new table
	// under the old manifest is still a consistent checkpoint.
	if err := ctxErr(ctx); err != nil {
		return err
	}

	snap, err := s.registry.Snapshot()
	if err != nil {
		return err
	}
	m := Manifest{
		Tail:            tail,
		PageBits:        s.opts.PageBits,
		MemPages:        s.opts.MemPages,
		PSFs:            snap,
		IngestedRecords: s.ingestedRecords.Load(),
		IngestedBytes:   s.ingestedBytes.Load(),
	}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	msp := sp.Child("checkpoint.manifest")
	if _, err := writeFileDurable(filepath.Join(dir, manifestFile), func(f *os.File) (int64, error) {
		n, werr := f.Write(raw)
		return int64(n), werr
	}); err != nil {
		msp.End()
		return err
	}
	// The renames themselves live in the directory; sync it so the new
	// checkpoint survives a crash of the whole machine.
	err = syncDir(dir)
	msp.End()
	if err != nil {
		return err
	}

	elapsed := time.Since(start)
	written := tableBytes + int64(len(raw))
	s.tele.RecordOp(telemetry.OpCheckpoint, elapsed)
	s.metrics.checkpoints.Inc()
	s.metrics.checkpointSeconds.Observe(int64(elapsed))
	s.metrics.checkpointBytes.Observe(written)
	s.metrics.reg.Trace("checkpoint.end",
		metrics.F("tail", tail),
		metrics.F("bytes", written),
		metrics.F("seconds", elapsed.Seconds()))
	return nil
}

// RecoverOptions configures Recover.
type RecoverOptions struct {
	// Options are the store options; Device must be the device holding the
	// log (it is reused, not truncated).
	Options Options
	// CustomPSFs resolves custom PSF functions by name when the checkpoint
	// contains custom registrations.
	CustomPSFs map[string]func(*parser.Parsed) expr.Value
}

// RecoveryInfo reports what recovery did.
type RecoveryInfo struct {
	// CheckpointTail is the manifest's covered address.
	CheckpointTail uint64
	// RecoveredTail is the final tail after replaying the durable suffix.
	RecoveredTail uint64
	// ReplayedRecords is the number of records re-linked from the suffix.
	ReplayedRecords int64
}

// Recover rebuilds a Store from a checkpoint directory and the log device.
// The hash-table image restores every chain below the checkpoint tail; the
// durable log suffix beyond it is replayed (scanned once, single-threaded,
// re-installing chain heads) exactly as Appendix E describes.
func Recover(dir string, ropts RecoverOptions) (*Store, RecoveryInfo, error) {
	var info RecoveryInfo
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, info, err
	}
	o, err := ropts.Options.withDefaults()
	if err != nil {
		return nil, info, err
	}
	if o.Device == nil {
		return nil, info, fmt.Errorf("fishstore: recovery requires the log device")
	}
	if o.PageBits != m.PageBits || o.MemPages != m.MemPages {
		// Geometry is part of the address space; honor the manifest.
		o.PageBits = m.PageBits
		o.MemPages = m.MemPages
	}
	met := initMetrics(&o)
	tr := resolveTracer(&o)
	recoveryStart := time.Now()

	rsp := tr.StartRoot("recover")
	rsp.SetUint("checkpoint_tail", m.Tail)
	defer rsp.End()

	info.CheckpointTail = m.Tail

	// 1. Find how far the durable suffix extends beyond the checkpoint by
	// probing record headers page by page.
	psp := rsp.Child("recover.probe")
	probe, replayEnd, err := probeDurableEnd(o, m.Tail)
	psp.SetUint("durable_end", replayEnd)
	psp.End()
	if err != nil {
		return nil, info, err
	}
	_ = probe

	// 2. Reopen the log at the recovered tail. As in Open, the store exists
	// before its log so the flush hook can degrade it on permanent failures.
	em := epoch.New()
	s := &Store{opts: o, epoch: em, pf: o.Parser, metrics: met, tracer: tr}
	if o.ProfileLabels {
		s.plabels = newProfileLabels()
		s.plabels.set(s.plabels.recover)
		defer s.plabels.clear()
	}
	log, err := hlog.Recover(hlog.Config{
		PageBits:      o.PageBits,
		MemPages:      o.MemPages,
		Device:        o.Device,
		Epoch:         em,
		OnFlush:       s.flushHook(),
		Tracer:        tr,
		ProfileLabels: o.ProfileLabels,
	}, replayEnd)
	if err != nil {
		return nil, info, err
	}
	s.log = log
	s.registry = psf.NewRegistry(em, log.TailAddress)
	if err := s.registry.Restore(m.PSFs, ropts.CustomPSFs); err != nil {
		return nil, info, err
	}

	// 3. Restore the hash-table image.
	tsp := rsp.Child("recover.table")
	tf, err := os.Open(filepath.Join(dir, tableFile))
	if err != nil {
		tsp.End()
		return nil, info, err
	}
	s.table = hashtable.New(1, 1)
	if _, err := s.table.ReadFrom(tf); err != nil {
		tf.Close()
		tsp.End()
		return nil, info, fmt.Errorf("fishstore: restoring table: %w", err)
	}
	tf.Close()
	tsp.End()
	s.wireInternalMetrics()
	s.wireSpanTee()
	s.registerIntrospection()
	s.wireWorkloadTelemetry()

	// 4. Replay the suffix [m.Tail, replayEnd): scan records in address
	// order and re-install chain heads. Prev pointers inside the records
	// are already durable and consistent (no forward links), so setting the
	// head to each successive key pointer reconstructs every chain.
	rpsp := rsp.Child("recover.replay")
	g := em.Acquire()
	replayed, replayedBytes, err := s.replaySuffix(g, m.Tail, replayEnd)
	g.Release()
	rpsp.SetInt("replayed", replayed)
	rpsp.End()
	if err != nil {
		return nil, info, err
	}
	info.ReplayedRecords = replayed
	info.RecoveredTail = replayEnd

	s.ingestedRecords.Store(m.IngestedRecords + replayed)
	s.ingestedBytes.Store(m.IngestedBytes + replayedBytes)

	rsp.SetUint("recovered_tail", replayEnd)
	elapsed := time.Since(recoveryStart)
	met.recoverySeconds.Observe(int64(elapsed))
	met.recoveryReplayed.Add(replayed)
	met.reg.Trace("recovery.end",
		metrics.F("checkpoint_tail", m.Tail),
		metrics.F("recovered_tail", replayEnd),
		metrics.F("replayed", replayed),
		metrics.F("seconds", elapsed.Seconds()))
	return s, info, nil
}

// probeDurableEnd scans forward from `from` on the device, walking and
// structurally validating record headers, and returns the first address that
// does not hold an intact record — the end of the recoverable suffix. A torn
// tail page (power cut mid-flush) ends the suffix at the first damaged
// record; a genuine device read error is returned as an error rather than
// silently truncating the log there.
func probeDurableEnd(o Options, from uint64) (pages int, end uint64, err error) {
	end, _, pages, err = walkDeviceLog(o.Device, o.PageBits, from, 0, nil)
	return pages, end, err
}

// replaySuffix re-links every record in [from, to). Records are visited in
// ascending address order, so installing each key pointer as its chain's
// head leaves every head at the highest (= most recent) chain entry. It
// returns the number of records re-linked and their payload bytes (indirect
// records reference payloads already counted at their original address).
func (s *Store) replaySuffix(g *epoch.Guard, from, to uint64) (int64, int64, error) {
	var replayed, replayedBytes int64
	var cbErr error
	err := s.visitRange(nil, g, from, to, nil, nil, func(addr uint64, v record.View) bool {
		h := v.Header()
		replayed++
		if !h.Indirect {
			replayedBytes += int64(v.PayloadLen())
		}
		for i := 0; i < h.NumPtrs; i++ {
			kp := v.KeyPointerAt(i)
			val := v.ValueBytes(kp)
			var hash uint64
			if def, ok := s.registry.Lookup(kp.PSFID); ok && def.ShardCount() > 1 {
				shards := def.ShardCount()
				hash = psf.ShardHash(kp.PSFID, val, shardOf(addr, shards), shards)
			} else {
				hash = hashtable.HashProperty(kp.PSFID, val)
			}
			slot, ferr := s.table.FindOrCreate(hash)
			if ferr != nil {
				cbErr = fmt.Errorf("fishstore: replay at %d: %w", addr, ferr)
				return false
			}
			kptAddr := addr + uint64(v.PointerWordIndex(i))*8
			for {
				old := slot.Load()
				if hashtable.Unpack(old).Address >= kptAddr {
					break // already restored at or beyond us
				}
				if slot.CompareAndSwapAddress(old, kptAddr) {
					break
				}
			}
		}
		return true
	})
	if err == nil {
		err = cbErr
	}
	return replayed, replayedBytes, err
}
