package fishstore

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"fishstore/internal/epoch"
	"fishstore/internal/expr"
	"fishstore/internal/hashtable"
	"fishstore/internal/metrics"
	"fishstore/internal/parser"
	"fishstore/internal/psf"
	"fishstore/internal/record"
	"fishstore/internal/storage"
	"fishstore/internal/telemetry"
	"fishstore/internal/trace"
)

// Session is an ingestion worker's handle (§6). Each concurrent ingestion
// goroutine owns one Session; it holds the worker's epoch guard, its
// thread-local parser session, and its cached view of the PSF registration
// metadata. A Session is not safe for concurrent use.
type Session struct {
	store *Store
	guard *epoch.Guard

	meta  *psf.Meta
	psess parser.Session

	// Per-batch scratch, reused across records.
	ptrSpecs    []record.PointerSpec
	ptrHashes   []uint64 // pre-computed for unsharded PSFs; 0 placeholder otherwise
	ptrShards   []int    // shard count per pointer (1 = unsharded)
	ptrCanons   [][]byte // canonical value copies for sharded pointers
	valueRegion []byte

	// Workload-attribution scratch (nil when telemetry is disabled):
	// per-meta-PSF record/byte counts accumulated with plain adds on the
	// hot path and flushed into the collector once per batch, plus a key
	// buffer for sampled property attribution.
	teleRecs  []int64
	teleBytes []int64
	teleKey   []byte

	phases PhaseStats
	closed bool
}

// PhaseStats is the per-session CPU-time breakdown of ingestion (Fig 13).
// Populated only when Options.CollectPhaseStats is set.
type PhaseStats struct {
	Parse   time.Duration // structural index + field extraction
	PSFEval time.Duration // PSF evaluation + pointer spec construction
	Memcpy  time.Duration // record allocation + copy onto the log
	Index   time.Duration // hash table and hash chain updates
	Others  time.Duration // visibility, refresh, bookkeeping
	Records int64
}

// Add accumulates other into p.
func (p *PhaseStats) Add(other PhaseStats) {
	p.Parse += other.Parse
	p.PSFEval += other.PSFEval
	p.Memcpy += other.Memcpy
	p.Index += other.Index
	p.Others += other.Others
	p.Records += other.Records
}

// Total returns the sum of all phases.
func (p PhaseStats) Total() time.Duration {
	return p.Parse + p.PSFEval + p.Memcpy + p.Index + p.Others
}

// IngestStats summarizes one Ingest call.
type IngestStats struct {
	Records     int
	Bytes       int64
	Properties  int // key pointers written
	ParseErrors int
	Reallocs    int // badCAS mode only
}

// NewSession registers an ingestion worker. The worker's epoch slot is
// only protected while an Ingest call is in flight, so idle sessions never
// block PSF registration or page-frame recycling.
func (s *Store) NewSession() *Session {
	g := s.epoch.Acquire()
	g.Unprotect()
	return &Session{store: s, guard: g}
}

// Close releases the worker's epoch slot. The Session must not be used
// afterwards.
func (sess *Session) Close() {
	if sess.closed {
		return
	}
	sess.closed = true
	sess.guard.Release()
}

// Phases returns the accumulated phase breakdown.
func (sess *Session) Phases() PhaseStats { return sess.phases }

// refreshMeta refreshes the epoch and rebuilds the parser session if PSF
// registration changed (§6.1: "whenever a worker detects changes in the
// fields of interest ... it recalculates the minimum field set for index
// building and recreates its thread-local parser").
func (sess *Session) refreshMeta() error {
	sess.guard.Refresh()
	meta := sess.store.registry.CurrentMeta()
	if sess.meta != nil && meta.Version == sess.meta.Version {
		return nil
	}
	ps, err := sess.store.pf.NewSession(meta.Fields)
	if err != nil {
		return fmt.Errorf("fishstore: rebuilding parser: %w", err)
	}
	sess.meta = meta
	sess.psess = ps
	if sess.store.tele != nil {
		// Any counts for the previous meta were flushed at the end of the
		// batch that accumulated them; size fresh accumulators for the new
		// PSF set (cold path: only on registration changes).
		sess.teleRecs = make([]int64, len(meta.PSFs))
		sess.teleBytes = make([]int64, len(meta.PSFs))
	}
	return nil
}

// Ingest pushes a batch of raw records through the four ingestion phases:
// (1) parsing and PSF evaluation, (2) record space allocation, (3) subset
// hash index update, (4) record visibility.
func (sess *Session) Ingest(batch [][]byte) (IngestStats, error) {
	return sess.IngestContext(nil, batch)
}

// IngestContext is Ingest with deadline/cancellation propagation: the batch
// is checked against ctx between records, a governor admission wait aborts
// when ctx expires, and ctx is threaded into retrying device I/O. Records
// ingested before cancellation stay ingested (the returned stats count
// them); the log, index, and epochs are left consistent.
func (sess *Session) IngestContext(ctx context.Context, batch [][]byte) (IngestStats, error) {
	if sess.closed {
		return IngestStats{}, ErrClosed
	}
	if sess.store.degraded.Load() {
		return IngestStats{}, ErrDegraded
	}
	if err := sess.store.maybeRecoverLogSpace(); err != nil {
		return IngestStats{}, err
	}
	// Admission happens before the checkpoint barrier and epoch protection:
	// a blocked batch must not stall checkpoints or page recycling.
	if g := sess.store.gov; g != nil {
		var tenant string
		if lbl := sess.store.opts.TenantLabel; lbl != nil {
			tenant = lbl()
		}
		var admitted int64
		for _, p := range batch {
			admitted += int64(len(p))
		}
		if err := g.admitIngest(ctx, tenant, admitted); err != nil {
			return IngestStats{}, err
		}
		defer g.releaseIngest(tenant, admitted)
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return IngestStats{}, err
		}
		done = ctx.Done()
	}
	sess.store.ckptMu.RLock()
	defer sess.store.ckptMu.RUnlock()
	sess.guard.Protect()
	defer sess.guard.Unprotect()
	if err := sess.refreshMeta(); err != nil {
		return IngestStats{}, err
	}
	timed := sess.store.opts.CollectPhaseStats

	met := sess.store.metrics
	// One sampled root span per batch; when it is nil (tracing off or the
	// batch unsampled) every per-record child below stays nil too, so the
	// whole span block costs one atomic load per batch.
	sp := sess.store.tracer.StartRoot("ingest.batch")
	defer sp.End()
	pl := sess.store.plabels
	if pl != nil {
		pprof.SetGoroutineLabels(pl.ingest)
		defer pl.clear()
	}
	tele := sess.store.tele
	var batchStart time.Time
	var phasesBefore PhaseStats
	if met.reg.Enabled() || sp != nil || tele != nil {
		batchStart = time.Now()
		if timed {
			phasesBefore = sess.phases
		}
	}

	var st IngestStats
	var mark time.Time
	lap := func(d *time.Duration) {
		if timed {
			now := time.Now()
			*d += now.Sub(mark)
			mark = now
		}
	}

	for _, payload := range batch {
		if done != nil {
			// Between-record cancellation point: the cheapest place where the
			// log, index, and epoch state are all quiescent for this session.
			select {
			case <-done:
				return st, ctx.Err()
			default:
			}
		}
		if timed {
			mark = time.Now()
		}

		// Phase 1a: parse the active fields of interest.
		if pl != nil {
			pprof.SetGoroutineLabels(pl.ingestPhase[0])
		}
		var csp *trace.Span
		if sp != nil {
			csp = sp.Child("ingest.parse")
			csp.SetInt("bytes", int64(len(payload)))
		}
		parsed, perr := sess.psess.Parse(payload)
		csp.End()
		lap(&sess.phases.Parse)
		if perr != nil {
			// Malformed records are still stored (FishStore keeps raw data
			// regardless) but carry no index entries.
			st.ParseErrors++
		}

		// Phase 1b: evaluate PSFs, pre-compute property hashes, and build
		// key pointer specs (subset hashing: the hash of each (PSF, value)
		// property is computed here, inside psf_eval).
		if pl != nil {
			pprof.SetGoroutineLabels(pl.ingestPhase[1])
		}
		if sp != nil {
			csp = sp.Child("ingest.psf_eval")
		}
		sess.buildPointers(payload, parsed, perr != nil)
		if csp != nil {
			csp.SetInt("pointers", int64(len(sess.ptrSpecs)))
			csp.End()
			csp = nil
		}
		lap(&sess.phases.PSFEval)

		// Phases 2..4, with one retry loop for badCAS reallocation.
		for {
			spec := record.Spec{
				Payload:     payload,
				Pointers:    sess.ptrSpecs,
				ValueRegion: sess.valueRegion,
				Checksum:    !sess.store.opts.DisableRecordChecksums,
			}
			if err := spec.Validate(); err != nil {
				return st, err
			}
			if pl != nil {
				pprof.SetGoroutineLabels(pl.ingestPhase[2])
			}
			if sp != nil {
				csp = sp.Child("ingest.append")
			}
			alloc, err := sess.store.log.Allocate(sess.guard, spec.SizeWords())
			if err != nil {
				csp.End()
				if storage.IsNoSpace(err) {
					// A full device surfaces here as a failed-flush frame that
					// can never be recycled. Managed state, not degradation:
					// reclaim space and the log resumes.
					sess.store.enterLogFull(err)
					return st, fmt.Errorf("%w: %v", ErrLogFull, err)
				}
				return st, err
			}
			spec.Write(alloc.Words)
			if csp != nil {
				csp.SetUint("address", alloc.Address)
				csp.End()
				csp = nil
			}
			lap(&sess.phases.Memcpy)

			if pl != nil {
				pprof.SetGoroutineLabels(pl.ingestPhase[3])
			}
			if sp != nil {
				csp = sp.Child("ingest.index")
			}
			view := record.View{Words: alloc.Words}
			ok, err := sess.linkAll(alloc.Address, view)
			csp.End()
			csp = nil
			lap(&sess.phases.Index)
			if err != nil {
				return st, err
			}
			if !ok {
				// badCAS mode: abandon this copy and reallocate at the tail.
				view.SetInvalid()
				view.SetVisible()
				sess.store.invalidated.Add(1)
				st.Reallocs++
				continue
			}

			if pl != nil {
				pprof.SetGoroutineLabels(pl.ingestPhase[4])
			}
			if sp != nil {
				csp = sp.Child("ingest.visibility")
			}
			view.SetVisible()
			sess.store.subs.notify(sess.store, alloc.Address, view, sess.ptrSpecs, payload, sess.valueRegion)
			csp.End()
			csp = nil
			lap(&sess.phases.Others)
			break
		}

		st.Records++
		st.Bytes += int64(len(payload))
		st.Properties += len(sess.ptrSpecs)
		met.recordBytes.Observe(int64(len(payload)))
		// Sampled per-(PSF,value) heavy-hitter attribution: 1-in-N records,
		// outside the lap windows and the hotpath-audited helpers.
		if tele != nil && len(sess.ptrSpecs) > 0 && tele.SampleProperty() {
			sess.observeSampledProperties(payload)
		}
	}

	sess.phases.Records += int64(st.Records)
	sess.store.ingestedRecords.Add(int64(st.Records))
	sess.store.ingestedBytes.Add(st.Bytes)
	sess.store.indexedProps.Add(int64(st.Properties))

	if met.reg.Enabled() {
		elapsed := time.Since(batchStart)
		met.batchSeconds.Observe(int64(elapsed))
		met.ingestRecords.Add(int64(st.Records))
		met.ingestBytes.Add(st.Bytes)
		met.ingestProps.Add(int64(st.Properties))
		met.parseErrors.Add(int64(st.ParseErrors))
		met.reallocations.Add(int64(st.Reallocs))
		if timed {
			// Observe the batch's share of each phase (deltas of the
			// lap-accumulated totals) — no extra clock reads beyond the
			// CollectPhaseStats machinery itself.
			deltas := [5]time.Duration{
				sess.phases.Parse - phasesBefore.Parse,
				sess.phases.PSFEval - phasesBefore.PSFEval,
				sess.phases.Memcpy - phasesBefore.Memcpy,
				sess.phases.Index - phasesBefore.Index,
				sess.phases.Others - phasesBefore.Others,
			}
			for i, d := range deltas {
				met.phaseSeconds[i].Observe(int64(d))
			}
		}
		met.reg.TraceSlow("ingest.slow_batch", elapsed,
			metrics.F("records", st.Records),
			metrics.F("bytes", st.Bytes))
	}
	if tele != nil {
		tele.RecordOp(telemetry.OpIngestBatch, time.Since(batchStart))
		sess.flushBatchAttribution(tele, &st)
	}
	if sp != nil {
		sp.SetInt("records", int64(st.Records))
		sp.SetInt("bytes", st.Bytes)
		sp.SetInt("properties", int64(st.Properties))
		sp.SetInt("parse_errors", int64(st.ParseErrors))
		sp.SetInt("reallocs", int64(st.Reallocs))
	}
	return st, nil
}

// buildPointers evaluates every active PSF against the parsed record and
// fills sess.ptrSpecs / ptrHashes / valueRegion. Values that are verbatim
// substrings of the payload become zero-copy ModePayload pointers; values
// that are not (escaped strings, non-canonical numbers, computed values)
// are materialized into the optional value region.
//
//fishlint:hotpath per-record pointer construction (ingest phase 3)
func (sess *Session) buildPointers(payload []byte, parsed *parser.Parsed, parseFailed bool) {
	sess.ptrSpecs = sess.ptrSpecs[:0]
	sess.ptrHashes = sess.ptrHashes[:0]
	sess.ptrShards = sess.ptrShards[:0]
	sess.ptrCanons = sess.ptrCanons[:0]
	sess.valueRegion = sess.valueRegion[:0]
	if parseFailed {
		return
	}
	for i := range sess.meta.PSFs {
		a := &sess.meta.PSFs[i]
		v := a.Def.Evaluate(parsed)
		if v.Kind == expr.KindMissing {
			continue
		}
		ps := record.PointerSpec{PSFID: a.ID}
		var canonical []byte
		if v.Kind == expr.KindBool {
			ps.Mode = record.ModeBool
			ps.BoolValue = v.Bool
			canonical = psf.CanonicalValue(v)
		} else {
			canonical = psf.CanonicalValue(v)
			inPayload := false
			if a.Def.Kind == psf.KindProjection {
				if f, ok := parsed.Get(a.Def.Fields[0]); ok && f.Offset >= 0 &&
					f.Len == len(canonical) &&
					bytes.Equal(payload[f.Offset:f.Offset+f.Len], canonical) {
					ps.Mode = record.ModePayload
					ps.ValOffset = f.Offset
					ps.ValSize = f.Len
					inPayload = true
				}
			}
			if !inPayload {
				ps.Mode = record.ModeValueRegion
				ps.ValOffset = len(sess.valueRegion)
				ps.ValSize = len(canonical)
				sess.valueRegion = append(sess.valueRegion, canonical...)
			}
		}
		sess.ptrSpecs = append(sess.ptrSpecs, ps)
		if sess.teleRecs != nil {
			// Batch-local attribution: plain slice-index adds here, one
			// collector update per active PSF at batch end.
			sess.teleRecs[i]++
			sess.teleBytes[i] += int64(len(payload))
		}
		shards := a.Def.ShardCount()
		sess.ptrShards = append(sess.ptrShards, shards)
		if shards > 1 {
			// The shard is derived from the record's address (chosen at
			// allocation time, see linkAll), so recovery replay can
			// recompute it; stash a stable copy of the canonical bytes.
			sess.ptrCanons = append(sess.ptrCanons, append([]byte(nil), canonical...))
			sess.ptrHashes = append(sess.ptrHashes, 0)
		} else {
			sess.ptrCanons = append(sess.ptrCanons, nil)
			sess.ptrHashes = append(sess.ptrHashes, hashtable.HashProperty(a.ID, canonical))
		}
	}
}

// linkAll runs phase 3 for every key pointer of the record. It returns
// ok=false only in badCAS mode, where a single CAS failure forces the caller
// to reallocate the record.
//
//fishlint:hotpath per-record chain linking (ingest phase 4)
func (sess *Session) linkAll(recAddr uint64, view record.View) (bool, error) {
	for i := range sess.ptrSpecs {
		wi := view.PointerWordIndex(i)
		kptAddr := recAddr + uint64(wi)*8
		wordA := &view.Words[wi]
		h := sess.ptrHashes[i]
		if shards := sess.ptrShards[i]; shards > 1 {
			h = psf.ShardHash(sess.ptrSpecs[i].PSFID, sess.ptrCanons[i], shardOf(recAddr, shards), shards)
		}
		if sess.store.opts.BadCAS {
			ok, err := sess.store.linkPointerNaive(h, kptAddr, wordA)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
			continue
		}
		if err := sess.store.linkPointer(h, kptAddr, wordA); err != nil {
			return false, err
		}
	}
	return true, nil
}

// shardOf derives a sharded PSF's chain for the record at addr. Using the
// address (rather than a counter) makes the assignment recomputable during
// recovery replay.
func shardOf(addr uint64, shards int) int {
	return int((addr >> 6) % uint64(shards))
}

var (
	teleTrue  = []byte("true")
	teleFalse = []byte("false")
)

// observeSampledProperties attributes the current record's properties to the
// per-(PSF,value) heavy-hitter dimension. Called for 1-in-SampleEvery
// records, after the record is fully ingested — sess.ptrSpecs and
// sess.valueRegion still describe it. The key buffer is session scratch, so
// the only steady-state cost is the collector's map lookups.
func (sess *Session) observeSampledProperties(payload []byte) {
	tele := sess.store.tele
	for j := range sess.ptrSpecs {
		ps := &sess.ptrSpecs[j]
		var name string
		for i := range sess.meta.PSFs {
			if sess.meta.PSFs[i].ID == ps.PSFID {
				name = sess.meta.PSFs[i].Def.Name
				break
			}
		}
		var val []byte
		switch ps.Mode {
		case record.ModeBool:
			if ps.BoolValue {
				val = teleTrue
			} else {
				val = teleFalse
			}
		case record.ModePayload:
			val = payload[ps.ValOffset : ps.ValOffset+ps.ValSize]
		case record.ModeValueRegion:
			val = sess.valueRegion[ps.ValOffset : ps.ValOffset+ps.ValSize]
		}
		key := append(sess.teleKey[:0], name...)
		key = append(key, '=')
		key = append(key, val...)
		sess.teleKey = key
		tele.ObservePropertyKey(key, 1, int64(len(payload)))
	}
}

// flushBatchAttribution drains the batch-local per-PSF accumulators into the
// collector (one locked update per active PSF per batch) and, when a
// TenantLabel hook is configured, charges the whole batch to the caller's
// tenant.
func (sess *Session) flushBatchAttribution(tele *telemetry.Collector, st *IngestStats) {
	for i := range sess.teleRecs {
		if sess.teleRecs[i] != 0 {
			tele.ObservePSF(sess.meta.PSFs[i].Def.Name, sess.teleRecs[i], sess.teleBytes[i])
			sess.teleRecs[i], sess.teleBytes[i] = 0, 0
		}
	}
	if lbl := sess.store.opts.TenantLabel; lbl != nil {
		tele.ObserveTenant(lbl(), int64(st.Records), st.Bytes)
	}
}
