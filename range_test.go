package fishstore

import (
	"fmt"
	"math/rand"
	"testing"

	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

func telemetryRecord(i int, cpu float64) []byte {
	return []byte(fmt.Sprintf(`{"seq": %d, "machine": "m%d", "cpu": %.3f}`, i, i%5, cpu))
}

func TestScanRangeCoversBucketsAndPostFilters(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, err := s.RegisterPSF(psf.RangeBucket("cpu", 10))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var batch [][]byte
	values := make([]float64, 500)
	for i := range values {
		values[i] = rng.Float64() * 100
		batch = append(batch, telemetryRecord(i, values[i]))
	}
	ingestAll(t, s, batch)

	cases := []struct{ lo, hi float64 }{
		{0, 100}, {15, 35}, {12.5, 13}, {99, 100}, {47, 53.5}, {0, 0.001},
	}
	for _, c := range cases {
		want := 0
		for _, v := range values {
			if v >= c.lo && v < c.hi {
				want++
			}
		}
		var got int
		st, err := s.ScanRange(id, c.lo, c.hi, ScanOptions{}, func(Record) bool {
			got++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("[%g,%g): matched %d, want %d", c.lo, c.hi, got, want)
		}
		if st.Matched != int64(want) {
			t.Fatalf("[%g,%g): stats.Matched %d, want %d", c.lo, c.hi, st.Matched, want)
		}
	}
}

func TestScanRangeRejectsWrongKind(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("cpu"))
	if _, err := s.ScanRange(id, 0, 10, ScanOptions{}, func(Record) bool { return true }); err == nil {
		t.Fatal("range scan on non-bucket PSF succeeded")
	}
	if _, err := s.ScanRange(99, 0, 10, ScanOptions{}, func(Record) bool { return true }); err == nil {
		t.Fatal("range scan on unknown PSF succeeded")
	}
}

func TestScanRangeEmptyAndEarlyStop(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.RangeBucket("cpu", 10))
	var batch [][]byte
	for i := 0; i < 100; i++ {
		batch = append(batch, telemetryRecord(i, float64(i)))
	}
	ingestAll(t, s, batch)

	// Degenerate range.
	st, err := s.ScanRange(id, 50, 50, ScanOptions{}, func(Record) bool { return true })
	if err != nil || st.Matched != 0 {
		t.Fatalf("empty range: %+v, %v", st, err)
	}
	// Early stop.
	var got int
	st, err = s.ScanRange(id, 0, 100, ScanOptions{}, func(Record) bool {
		got++
		return got < 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 || !st.Stopped {
		t.Fatalf("early stop: got %d, stopped %v", got, st.Stopped)
	}
}

func TestIterateVisitsEverything(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 12, MemPages: 2})
	var batch [][]byte
	const n = 300
	for i := 0; i < n; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	var got int
	var prev uint64
	if err := s.Iterate(0, 0, func(r Record) bool {
		if r.Address <= prev && prev != 0 {
			t.Fatal("iteration order violation")
		}
		prev = r.Address
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("iterated %d, want %d", got, n)
	}
}

func TestIterateSkipsIndirectRecords(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 12, MemPages: 2})
	var batch [][]byte
	for i := 0; i < 50; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	end := s.TailAddress()
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	if _, err := s.BuildHistoricalIndex(id, 0, end); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := s.Iterate(0, 0, func(r Record) bool {
		if len(r.Payload) == 8 {
			t.Fatal("indirect index record leaked into Iterate")
		}
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("iterated %d, want 50 data records", got)
	}
}
