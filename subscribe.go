package fishstore

import (
	"sync"
	"sync/atomic"

	"fishstore/internal/psf"
	"fishstore/internal/record"
)

// Subscription delivers records matching a property as they are ingested —
// FishStore's streaming-query hook (§2.3 "Streaming queries"): the
// now-schematized data can be fed to a streaming engine as it arrives.
type Subscription struct {
	store  *Store
	prop   Property
	canon  []byte
	ch     chan Record
	drops  atomic.Int64
	once   sync.Once
	closed atomic.Bool
}

// Records is the delivery channel. It is closed by Cancel.
func (sub *Subscription) Records() <-chan Record { return sub.ch }

// Dropped reports how many records were discarded because the subscriber
// fell behind its buffer.
func (sub *Subscription) Dropped() int64 { return sub.drops.Load() }

// Cancel detaches the subscription and closes its channel.
func (sub *Subscription) Cancel() {
	sub.once.Do(func() {
		sub.closed.Store(true)
		sub.store.subs.remove(sub)
		close(sub.ch)
	})
}

// subscriptions is the store's active subscription set. The hot path
// (notify) is a single atomic load when no subscriptions exist.
type subscriptions struct {
	count atomic.Int64
	mu    sync.RWMutex
	list  []*Subscription
}

// Subscribe registers a streaming subscription for prop with the given
// channel buffer. Delivery is best-effort: if the buffer is full the record
// is dropped and counted, so slow consumers never stall ingestion.
func (s *Store) Subscribe(prop Property, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 64
	}
	sub := &Subscription{
		store: s,
		prop:  prop,
		canon: psf.CanonicalValue(prop.Value),
		ch:    make(chan Record, buffer),
	}
	s.subs.mu.Lock()
	s.subs.list = append(s.subs.list, sub)
	s.subs.mu.Unlock()
	s.subs.count.Add(1)
	return sub
}

func (subs *subscriptions) remove(sub *Subscription) {
	subs.mu.Lock()
	for i, x := range subs.list {
		if x == sub {
			subs.list = append(subs.list[:i], subs.list[i+1:]...)
			subs.count.Add(-1)
			break
		}
	}
	subs.mu.Unlock()
}

// notify delivers a just-ingested record to matching subscriptions. Called
// with the record's pointer specs so property values need not be
// re-evaluated.
func (subs *subscriptions) notify(s *Store, addr uint64, view record.View,
	specs []record.PointerSpec, payload []byte, valueRegion []byte) {
	if subs.count.Load() == 0 {
		return
	}
	subs.mu.RLock()
	defer subs.mu.RUnlock()
	for _, sub := range subs.list {
		if sub.closed.Load() {
			continue
		}
		for _, ps := range specs {
			if ps.PSFID != sub.prop.PSF {
				continue
			}
			if !specMatchesCanon(ps, payload, valueRegion, sub.canon) {
				continue
			}
			rec := Record{Address: addr, Payload: append([]byte(nil), payload...)}
			select {
			case sub.ch <- rec:
			default:
				sub.drops.Add(1)
			}
			break
		}
	}
}

// specMatchesCanon compares a pointer spec's value bytes with a canonical
// property value.
func specMatchesCanon(ps record.PointerSpec, payload, valueRegion, canon []byte) bool {
	switch ps.Mode {
	case record.ModeBool:
		want := byte('f')
		if ps.BoolValue {
			want = 't'
		}
		return len(canon) == 1 && canon[0] == want
	case record.ModePayload:
		if ps.ValOffset+ps.ValSize > len(payload) {
			return false
		}
		return string(payload[ps.ValOffset:ps.ValOffset+ps.ValSize]) == string(canon)
	case record.ModeValueRegion:
		if ps.ValOffset+ps.ValSize > len(valueRegion) {
			return false
		}
		return string(valueRegion[ps.ValOffset:ps.ValOffset+ps.ValSize]) == string(canon)
	}
	return false
}
