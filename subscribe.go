package fishstore

import (
	"context"
	"sync"
	"sync/atomic"

	"fishstore/internal/psf"
	"fishstore/internal/record"
)

// SubscribePolicy selects what happens when a subscriber's channel buffer is
// full at delivery time.
type SubscribePolicy int

const (
	// DropNewest (the default) discards the just-ingested record: slow
	// consumers never stall ingestion and keep the oldest buffered window.
	DropNewest SubscribePolicy = iota
	// DropOldest evicts the oldest buffered record to admit the new one:
	// slow consumers never stall ingestion and keep the freshest window.
	DropOldest
	// Block stalls the ingesting session until the subscriber drains or the
	// subscription is cancelled: lossless, but a stuck consumer becomes
	// ingestion backpressure. Pair it with SubscribeOptions.Context so an
	// abandoned consumer cannot wedge ingestion forever.
	Block
)

// SubscribeOptions configures SubscribeWith.
type SubscribeOptions struct {
	// Buffer is the delivery-channel capacity (default 64).
	Buffer int
	// Policy is the full-buffer behaviour (default DropNewest).
	Policy SubscribePolicy
	// Context, when non-nil, cancels the subscription when it is done —
	// including waking any Block-policy delivery stalled on the buffer.
	Context context.Context
}

// Subscription delivers records matching a property as they are ingested —
// FishStore's streaming-query hook (§2.3 "Streaming queries"): the
// now-schematized data can be fed to a streaming engine as it arrives.
type Subscription struct {
	store  *Store
	prop   Property
	canon  []byte
	ch     chan Record
	policy SubscribePolicy
	done   chan struct{} // closed by Cancel; wakes Block-policy senders
	drops  atomic.Int64
	once   sync.Once
	closed atomic.Bool
}

// Records is the delivery channel. It is closed by Cancel.
func (sub *Subscription) Records() <-chan Record { return sub.ch }

// Dropped reports how many records were discarded because the subscriber
// fell behind its buffer (under either drop policy; Block never drops).
func (sub *Subscription) Dropped() int64 { return sub.drops.Load() }

// Cancel detaches the subscription and closes its channel.
func (sub *Subscription) Cancel() {
	sub.once.Do(func() {
		sub.closed.Store(true)
		// Wake Block-policy senders first: they hold the subscription set's
		// read lock, which remove needs to take exclusively.
		close(sub.done)
		sub.store.subs.remove(sub)
		close(sub.ch)
	})
}

// subscriptions is the store's active subscription set. The hot path
// (notify) is a single atomic load when no subscriptions exist.
type subscriptions struct {
	count atomic.Int64
	mu    sync.RWMutex
	list  []*Subscription
}

// Subscribe registers a streaming subscription for prop with the given
// channel buffer and the default DropNewest policy: if the buffer is full
// the record is dropped and counted, so slow consumers never stall
// ingestion.
func (s *Store) Subscribe(prop Property, buffer int) *Subscription {
	return s.SubscribeWith(prop, SubscribeOptions{Buffer: buffer})
}

// SubscribeWith registers a streaming subscription with an explicit
// slow-subscriber policy.
func (s *Store) SubscribeWith(prop Property, opts SubscribeOptions) *Subscription {
	buffer := opts.Buffer
	if buffer < 1 {
		buffer = 64
	}
	sub := &Subscription{
		store:  s,
		prop:   prop,
		canon:  psf.CanonicalValue(prop.Value),
		ch:     make(chan Record, buffer),
		policy: opts.Policy,
		done:   make(chan struct{}),
	}
	s.subs.mu.Lock()
	s.subs.list = append(s.subs.list, sub)
	s.subs.mu.Unlock()
	s.subs.count.Add(1)
	if ctx := opts.Context; ctx != nil {
		context.AfterFunc(ctx, sub.Cancel)
	}
	return sub
}

func (subs *subscriptions) remove(sub *Subscription) {
	subs.mu.Lock()
	for i, x := range subs.list {
		if x == sub {
			subs.list = append(subs.list[:i], subs.list[i+1:]...)
			subs.count.Add(-1)
			break
		}
	}
	subs.mu.Unlock()
}

// notify delivers a just-ingested record to matching subscriptions. Called
// with the record's pointer specs so property values need not be
// re-evaluated.
func (subs *subscriptions) notify(s *Store, addr uint64, view record.View,
	specs []record.PointerSpec, payload []byte, valueRegion []byte) {
	if subs.count.Load() == 0 {
		return
	}
	subs.mu.RLock()
	defer subs.mu.RUnlock()
	for _, sub := range subs.list {
		if sub.closed.Load() {
			continue
		}
		for _, ps := range specs {
			if ps.PSFID != sub.prop.PSF {
				continue
			}
			if !specMatchesCanon(ps, payload, valueRegion, sub.canon) {
				continue
			}
			rec := Record{Address: addr, Payload: append([]byte(nil), payload...)}
			sub.deliver(s, rec)
			break
		}
	}
}

// deliver sends rec per the subscription's policy. It runs under the
// subscription set's read lock, which is what makes the channel operations
// safe against a concurrent Cancel: close(ch) happens only after remove has
// taken the write lock, i.e. strictly after every in-flight deliver.
func (sub *Subscription) deliver(s *Store, rec Record) {
	select {
	case sub.ch <- rec:
		return
	default:
	}
	switch sub.policy {
	case DropOldest:
		select {
		case <-sub.ch: // evict the oldest buffered record
			sub.noteDrop(s)
		default: // the consumer drained concurrently; nothing to evict
		}
		select {
		case sub.ch <- rec:
		default:
			sub.noteDrop(s) // lost the slot race to another ingesting session
		}
	case Block:
		select {
		case sub.ch <- rec:
		case <-sub.done: // cancelled mid-stall; the record is moot
		}
	default: // DropNewest
		sub.noteDrop(s)
	}
}

func (sub *Subscription) noteDrop(s *Store) {
	sub.drops.Add(1)
	s.metrics.subDropped.Inc()
}

// specMatchesCanon compares a pointer spec's value bytes with a canonical
// property value.
func specMatchesCanon(ps record.PointerSpec, payload, valueRegion, canon []byte) bool {
	switch ps.Mode {
	case record.ModeBool:
		want := byte('f')
		if ps.BoolValue {
			want = 't'
		}
		return len(canon) == 1 && canon[0] == want
	case record.ModePayload:
		if ps.ValOffset+ps.ValSize > len(payload) {
			return false
		}
		return string(payload[ps.ValOffset:ps.ValOffset+ps.ValSize]) == string(canon)
	case record.ModeValueRegion:
		if ps.ValOffset+ps.ValSize > len(valueRegion) {
			return false
		}
		return string(valueRegion[ps.ValOffset:ps.ValOffset+ps.ValSize]) == string(canon)
	}
	return false
}
