package fishstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fishstore/internal/epoch"
	"fishstore/internal/psf"
	"fishstore/internal/record"
	"fishstore/internal/telemetry"
	"fishstore/internal/trace"
)

// rangeIndexComplete reports whether the PSF's index is guaranteed complete
// over every address in [from, to): within such a range, ingest-time
// evaluation produced a key pointer for exactly the records the PSF matches,
// so scanning key pointers and re-evaluating the PSF over parsed payloads
// give identical answers.
func (s *Store) rangeIndexComplete(id psf.ID, from, to uint64) bool {
	cur := from
	for _, iv := range s.registry.Intervals(id) {
		if cur < iv.From {
			return false // gap before this interval
		}
		if cur < iv.To {
			cur = iv.To
		}
		if cur >= to {
			return true
		}
	}
	return cur >= to
}

// fastFullScanSegment is the full-scan path over an index-complete range:
// instead of parsing every record and re-evaluating the PSF, it matches
// records by their ingest-time key pointers — and, for on-device pages with
// a membership summary, skips whole pages that provably hold no matching
// pointer. Results are identical to the parse path over index-complete
// ranges (records whose parse failed at ingest got no pointer and would
// fail the scan-side parse too; indirect index records are skipped by both
// paths). Delivery stays in ascending address order for the serial path and
// arbitrary order for the parallel path, matching fullScanSegment.
func (s *Store) fastFullScanSegment(ctx context.Context, g *epoch.Guard, prop Property, canon []byte,
	from, to uint64, parallelism int, emit func(Record) bool, st *ScanStats) (bool, error) {

	// Pointer-match full scans count as full-scan work in the workload view
	// even though they never parse: the operator's question is "how much of
	// the read path bypassed the index", not "which matcher ran".
	if tele := s.tele; tele != nil {
		start := time.Now()
		defer func() { tele.RecordOp(telemetry.OpFullScan, time.Since(start)) }()
	}

	sig := prop.hash()
	if parallelism > 1 {
		return s.parallelFastFullScan(ctx, prop, canon, sig, from, to, parallelism, emit, st)
	}

	stopped := false
	err := s.visitMatchRange(ctx, g, sig, from, to, &st.Quarantined, &st.PageCacheHits, &st.BloomSkippedPages,
		func(addr uint64, v record.View) bool {
			st.Visited++
			if r, ok := s.matchByPointer(prop, canon, addr, v); ok {
				if !emit(r) {
					stopped = true
					return false
				}
			}
			return true
		})
	return stopped, err
}

// matchByPointer checks whether the record at addr carries a key pointer
// for prop with the queried value, returning the emitted record on a match.
// Indirect (historical index) records never match — the parse-based full
// scan skips them too.
//
//fishlint:hotpath per-record subset-scan match
func (s *Store) matchByPointer(prop Property, canon []byte, addr uint64, v record.View) (Record, bool) {
	h := v.Header()
	if h.Indirect {
		return Record{}, false
	}
	for i := 0; i < h.NumPtrs; i++ {
		kp := v.KeyPointerAt(i)
		if kp.PSFID != prop.PSF {
			continue
		}
		// At most one pointer per PSF per record: this is the decision.
		if bytes.Equal(v.ValueBytes(kp), canon) {
			return Record{Address: addr, Payload: v.Payload()}, true
		}
		return Record{}, false
	}
	return Record{}, false
}

// visitMatchRange is visitRange plus per-page summary pruning: an on-device
// page whose bloom summary proves sig absent is skipped without touching the
// device or the page cache.
func (s *Store) visitMatchRange(ctx context.Context, g *epoch.Guard, sig uint64, from, to uint64,
	quarantined, cacheHits, bloomSkips *int64, visit func(addr uint64, v record.View) bool) error {
	pageSize := s.log.PageSize()

	for addr := from; addr < to; {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		pageStart := addr &^ (pageSize - 1)
		pageEnd := pageStart + pageSize
		limit := to
		if pageEnd < limit {
			limit = pageEnd
		}
		g.Refresh()

		if addr < s.log.HeadAddress() && s.summaries != nil {
			if may, ok := s.summaries.mayContain(s.log.PageOf(addr), sig); ok && !may {
				if bloomSkips != nil {
					atomic.AddInt64(bloomSkips, 1)
				}
				addr = pageEnd
				continue
			}
		}

		vfn := visit
		var words []uint64
		if addr >= s.log.HeadAddress() {
			words = s.log.PageWordsFrom(addr)
		} else {
			n := int(pageEnd-addr) / 8
			g.Unprotect()
			w, hit, err := s.devicePageWords(ctx, addr, n)
			g.Protect()
			if err != nil {
				return fmt.Errorf("fishstore: fast scan read at %d: %w", addr, err)
			}
			if hit && cacheHits != nil {
				atomic.AddInt64(cacheHits, 1)
			}
			words = w
			if s.opts.VerifyOnRead {
				vfn = func(addr uint64, v record.View) bool {
					h := v.Header()
					if reason := validateRecord(addr, h, v); reason != "" || !v.ChecksumOK() {
						if reason == "" {
							reason = "checksum mismatch"
						}
						s.quarantineRecord(addr, quarantined, "full-scan", reason)
						return true
					}
					return visit(addr, v)
				}
			}
		}
		if !walkRecords(words, addr, limit, vfn) {
			return nil
		}
		addr = pageEnd
	}
	return nil
}

// parallelFastFullScan distributes pages of the fast path across workers,
// mirroring parallelFullScan's page-claim loop. Matches are emitted through
// a mutex, in arbitrary order.
func (s *Store) parallelFastFullScan(ctx context.Context, prop Property, canon []byte, sig uint64,
	from, to uint64, workers int, emit func(Record) bool, st *ScanStats) (bool, error) {

	pageSize := s.log.PageSize()
	firstPage := s.log.PageOf(from)
	lastPage := s.log.PageOf(to - 1)
	var nextPage atomic.Uint64
	nextPage.Store(firstPage)

	var mu sync.Mutex
	var stopped atomic.Bool
	var visited, quarantined, cacheHits, bloomSkips atomic.Int64
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wg2 := s.epoch.Acquire()
			defer wg2.Release()
			for !stopped.Load() {
				if err := ctxErr(ctx); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				p := nextPage.Add(1) - 1
				if p > lastPage {
					return
				}
				lo := p * pageSize
				if lo < from {
					lo = from
				}
				hi := (p + 1) * pageSize
				if hi > to {
					hi = to
				}
				var q, ch, bs int64
				err := s.visitMatchRange(ctx, wg2, sig, lo, hi, &q, &ch, &bs,
					func(addr uint64, v record.View) bool {
						visited.Add(1)
						if r, ok := s.matchByPointer(prop, canon, addr, v); ok {
							mu.Lock()
							ok := emit(r)
							mu.Unlock()
							if !ok {
								stopped.Store(true)
								return false
							}
						}
						return true
					})
				quarantined.Add(q)
				cacheHits.Add(ch)
				bloomSkips.Add(bs)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	st.Visited += visited.Load()
	st.Quarantined += quarantined.Load()
	st.PageCacheHits += cacheHits.Load()
	st.BloomSkippedPages += bloomSkips.Load()
	return stopped.Load(), firstErr
}

// ---- page-parallel chain walks ----

// pagedDeviceChainWalk traverses the on-device suffix of a hash chain in two
// phases: a light discovery pass that follows the chain reading only the
// 16-byte key-pointer words per hop (collecting the links whose PSF matches),
// then a page-parallel resolution pass that fills the distinct log pages
// those links live on concurrently through the page cache and re-walks the
// links from cached memory. Wall-clock device time drops from one dependent
// read per hop to (tiny reads) + (distinct pages ÷ parallelism). Returns the
// PSF-matching candidate links (for hot-chain memoization) and the address
// below which the walk saw the chain continue (0 = chain end reached).
func (s *Store) pagedDeviceChainWalk(ctx context.Context, g *epoch.Guard, start uint64, prop Property, canon []byte,
	from, to uint64, par int, sp *trace.Span, emit func(Record) bool, st *ScanStats) (stopped bool, cands []uint64, lastPrev uint64, err error) {

	// Phase 1: discovery. No speculation, no cache fills — 16 bytes per hop.
	cr := newChainReader(ctx, s.log, false, nil, s.metrics, sp)
	defer func() {
		st.IOs += cr.ios
		st.ReadBytes += cr.bytesRead
		st.PrefetchHits += cr.hits
		cr.release()
	}()
	cur := start
	hops := 0
	for cur != 0 && cur >= from {
		hops++
		if hops%64 == 0 {
			if cerr := ctxErr(ctx); cerr != nil {
				return false, nil, cur, cerr
			}
			g.Refresh()
		}
		g.Unprotect()
		kw, ferr := cr.fetch(cur, 16)
		g.Protect()
		if ferr != nil {
			return false, nil, cur, fmt.Errorf("fishstore: chain discovery at %d: %w", cur, ferr)
		}
		kp := record.UnpackKeyPointer(binary.LittleEndian.Uint64(kw), binary.LittleEndian.Uint64(kw[8:]))
		st.IndexHops++
		if kp.PSFID == prop.PSF {
			cands = append(cands, cur)
		}
		cur = kp.PrevAddress
	}
	lastPrev = cur

	// Phase 2: resolve the candidates from page-parallel cache fills.
	stopped, err = s.resolveChainLinks(ctx, g, cands, prop, canon, from, to, par, sp, emit, st)
	return stopped, cands, lastPrev, err
}

// resolveChainLinks materializes and emits the matching records behind a
// known list of candidate key-pointer addresses (descending order): the
// replay half of the hot-chain cache and phase 2 of the paged chain walk.
// With par > 1 and a page cache, the distinct pages are pre-filled
// concurrently before the sequential, order-preserving emission pass.
//
//fishlint:hotpath per-hop chain resolution on the scan path
func (s *Store) resolveChainLinks(ctx context.Context, g *epoch.Guard, links []uint64, prop Property, canon []byte,
	from, to uint64, par int, sp *trace.Span, emit func(Record) bool, st *ScanStats) (bool, error) {

	if len(links) == 0 {
		return false, nil
	}
	if par > 1 && s.pcache != nil {
		s.prefillLinkPages(ctx, links, from, par, st)
	}

	cr := newChainReader(ctx, s.log, true, s.pcache, s.metrics, sp)
	defer func() {
		st.IOs += cr.ios
		st.ReadBytes += cr.bytesRead
		st.PrefetchHits += cr.hits
		st.PageCacheHits += cr.cacheHits
		cr.release()
	}()

	stopped := false
	for i, cur := range links {
		if cur < from {
			break // links are descending; nothing below can be in range
		}
		if cur >= s.log.HeadAddress() {
			// Head never moves backwards: a memoized on-device link cannot
			// return to memory. Defensive skip.
			continue
		}
		if i%64 == 63 {
			if cerr := ctxErr(ctx); cerr != nil {
				return false, cerr
			}
			g.Refresh()
		}
		g.Unprotect()
		v, base, err := cr.record(cur)
		g.Protect()
		if err != nil {
			return false, fmt.Errorf("fishstore: chain resolve at %d: %w", cur, err)
		}
		if s.opts.VerifyOnRead {
			h := v.Header()
			reason := validateRecord(base, h, v)
			if reason == "" && !v.ChecksumOK() {
				reason = "checksum mismatch"
			}
			if reason != "" {
				// Same contract as the sequential walk: a corrupt chain
				// record poisons everything it points to.
				s.quarantineRecord(base, &st.Quarantined, "chain", reason)
				return false, nil
			}
		}
		st.Visited++
		h := v.Header()
		ptrIndex := (int((cur-base)/8) - record.HeaderWords) / record.WordsPerPointer
		kp := v.KeyPointerAt(ptrIndex)
		match := h.Visible && !h.Invalid && kp.PSFID == prop.PSF &&
			bytes.Equal(v.ValueBytes(kp), canon)
		if !match {
			continue
		}
		rec, merr := s.materialize(ctx, g, v, base, st)
		if errors.Is(merr, errQuarantined) {
			continue
		}
		if merr != nil {
			return false, merr
		}
		if rec.Address >= from && rec.Address < to {
			if !emit(rec) {
				stopped = true
				break
			}
		}
	}
	return stopped, nil
}

// maxPrefillPages bounds how many pages one resolve pass prefills, so the
// page list fits a fixed stack buffer and the resolve hot path allocates
// nothing for its own prefetch bookkeeping. Anything past the bound is
// loaded on demand by the sequential resolution pass.
const maxPrefillPages = 256

// prefillState is the shared work queue for a prefill fan-out: workers claim
// page indices via next and accumulate I/O stats for the caller.
type prefillState struct {
	pages     []uint64
	next      atomic.Int64
	ios       atomic.Int64
	readBytes atomic.Int64
}

// prefillWorker carries one worker's fill target so the page-cache fill
// callback is a reusable method value (bound once per worker) rather than a
// fresh closure per page.
type prefillWorker struct {
	s        *Store
	ctx      context.Context
	pageSize uint64
	page     uint64
}

func (w *prefillWorker) fill() ([]uint64, error) {
	return w.s.log.ReadWordsFromDeviceCtx(w.ctx, w.page*w.pageSize, int(w.pageSize/8))
}

// prefillLoop is the per-goroutine prefill drain. A named method, not a
// closure: the spawning path is transitively hot via resolveChainLinks.
func (s *Store) prefillLoop(ctx context.Context, ps *prefillState, pageSize uint64, wg *sync.WaitGroup) {
	defer wg.Done()
	w := prefillWorker{s: s, ctx: ctx, pageSize: pageSize}
	fill := w.fill
	for {
		i := int(ps.next.Add(1) - 1)
		if i >= len(ps.pages) {
			return
		}
		if ctxErr(ctx) != nil {
			return // cancelled: remaining pages load on demand later
		}
		w.page = ps.pages[i]
		_, hit, err := s.pcache.GetOrLoad(w.page, fill)
		if err == nil && !hit {
			ps.ios.Add(1)
			ps.readBytes.Add(int64(pageSize))
		}
	}
}

// prefillLinkPages fills the distinct on-device pages behind links into the
// page cache with up to par concurrent device reads. Fills need no epoch
// protection (the pages are immutable); errors are left for the sequential
// resolution pass to rediscover and report.
func (s *Store) prefillLinkPages(ctx context.Context, links []uint64, from uint64, par int, st *ScanStats) {
	head := s.log.HeadAddress()
	pageSize := s.log.PageSize()
	// Links arrive in descending address order (chains are prepend-only), so
	// their pages are monotonically non-increasing: comparing against the
	// previous page dedups without a set.
	var buf [maxPrefillPages]uint64
	n := 0
	last := ^uint64(0)
	for _, l := range links {
		if l < from || l >= head {
			continue
		}
		p := s.log.PageOf(l)
		if p == last {
			continue
		}
		last = p
		if s.pcache.Get(p) != nil {
			continue // already resident; Get also bumps its CLOCK bit
		}
		buf[n] = p
		n++
		if n == maxPrefillPages {
			break
		}
	}
	if n < 2 {
		return // nothing to parallelize
	}
	if par > n {
		par = n
	}
	ps := prefillState{pages: buf[:n]}
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go s.prefillLoop(ctx, &ps, pageSize, &wg)
	}
	wg.Wait()
	st.IOs += ps.ios.Load()
	st.ReadBytes += ps.readBytes.Load()
}
