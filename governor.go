package fishstore

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrBusy is returned when an operation is refused by the resource governor
// (Options.Limits): the store is over the configured in-flight budget and the
// operation either declined to wait (MaxWait zero), waited MaxWait without
// capacity appearing, or was shed as discardable load during an SLO breach.
// ErrBusy is retryable by construction — nothing about the store is wrong,
// it is simply full.
var ErrBusy = errors.New("fishstore: over resource limits")

// governor is the store-level admission controller. The admission fast path
// is one or two atomic adds and must stay allocation-free (it runs once per
// ingest batch and once per scan); the slow path — an operation that actually
// has to wait for capacity — may allocate a timer.
//
// Capacity release is broadcast through one-slot signal channels: a release
// performs a non-blocking send, waiters re-try on receive, and a waiter that
// admits itself after consuming a signal forwards it so a coalesced wakeup
// still reaches the remaining waiters. Waiters that miss a forwarded signal
// are bounded by their MaxWait timer, never stranded.
type governor struct {
	lim Limits
	met *storeMetrics

	inflightBytes atomic.Int64
	activeScans   atomic.Int64
	breach        atomic.Bool // latest SLO watchdog verdict (noteHealth)

	waits   atomic.Int64 // operations that blocked for capacity
	rejects atomic.Int64 // operations refused with ErrBusy
	sheds   atomic.Int64 // scans shed because of an SLO breach

	ingestSig chan struct{}
	scanSig   chan struct{}

	// Per-tenant in-flight ingest bytes and the tenant's byte cap
	// (share/totalShares of the global budget). Both maps are read-only
	// after newGovernor; only the counters they point at mutate.
	tenantInflight map[string]*atomic.Int64
	tenantCap      map[string]int64
}

func newGovernor(lim *Limits, met *storeMetrics) *governor {
	g := &governor{
		lim:       *lim,
		met:       met,
		ingestSig: make(chan struct{}, 1),
		scanSig:   make(chan struct{}, 1),
	}
	if len(lim.TenantShares) > 0 {
		var total int64
		for _, share := range lim.TenantShares {
			total += share
		}
		g.tenantInflight = make(map[string]*atomic.Int64, len(lim.TenantShares))
		g.tenantCap = make(map[string]int64, len(lim.TenantShares))
		for tenant, share := range lim.TenantShares {
			cap := lim.MaxInFlightIngestBytes * share / total
			if cap < 1 {
				cap = 1
			}
			g.tenantInflight[tenant] = new(atomic.Int64)
			g.tenantCap[tenant] = cap
		}
	}
	return g
}

// noteHealth records the SLO watchdog's latest verdict; while true, scans
// submitted with a negative priority are shed (ShedScansOnBreach).
func (g *governor) noteHealth(breach bool) { g.breach.Store(breach) }

// admitIngest charges n raw batch bytes against the global (and, when the
// tenant has a configured share, per-tenant) in-flight budget, blocking up to
// MaxWait for capacity. An oversized batch (bigger than the whole budget) is
// admitted only when its budget is idle, so it cannot starve forever.
//
//fishlint:hotpath per-batch admission (fast path must not allocate)
func (g *governor) admitIngest(ctx context.Context, tenant string, n int64) error {
	if g.lim.MaxInFlightIngestBytes == 0 || n == 0 {
		return nil
	}
	var tc *atomic.Int64
	tcap := int64(0)
	if g.tenantInflight != nil && tenant != "" {
		if c, ok := g.tenantInflight[tenant]; ok {
			tc = c
			tcap = g.tenantCap[tenant]
		}
	}
	if g.tryIngest(tc, tcap, n) {
		return nil
	}
	return g.waitSlow(ctx, g.ingestSig, func() bool { return g.tryIngest(tc, tcap, n) })
}

func (g *governor) tryIngest(tc *atomic.Int64, tcap, n int64) bool {
	now := g.inflightBytes.Add(n)
	if now > g.lim.MaxInFlightIngestBytes && now != n {
		g.inflightBytes.Add(-n)
		return false
	}
	if tc != nil {
		tnow := tc.Add(n)
		if tnow > tcap && tnow != n {
			tc.Add(-n)
			g.inflightBytes.Add(-n)
			return false
		}
	}
	return true
}

// releaseIngest returns a batch's bytes to the budget and wakes a waiter.
//
//fishlint:hotpath per-batch admission release
func (g *governor) releaseIngest(tenant string, n int64) {
	if g.lim.MaxInFlightIngestBytes == 0 || n == 0 {
		return
	}
	if g.tenantInflight != nil && tenant != "" {
		if c, ok := g.tenantInflight[tenant]; ok {
			c.Add(-n)
		}
	}
	g.inflightBytes.Add(-n)
	signal(g.ingestSig)
}

// admitScan admits one scan (Lookup counts as a scan). Negative-priority
// scans are shed outright while the SLO watchdog reports a breach and
// ShedScansOnBreach is set.
//
//fishlint:hotpath per-scan admission (fast path must not allocate)
func (g *governor) admitScan(ctx context.Context, priority int) error {
	if g.lim.ShedScansOnBreach && priority < 0 && g.breach.Load() {
		g.sheds.Add(1)
		g.met.scanSheds.Inc()
		return ErrBusy
	}
	if g.lim.MaxConcurrentScans == 0 {
		return nil
	}
	if g.tryScan() {
		return nil
	}
	return g.waitSlow(ctx, g.scanSig, g.tryScan)
}

func (g *governor) tryScan() bool {
	if g.activeScans.Add(1) > g.lim.MaxConcurrentScans {
		g.activeScans.Add(-1)
		return false
	}
	return true
}

// releaseScan returns a scan slot and wakes a waiter.
//
//fishlint:hotpath per-scan admission release
func (g *governor) releaseScan() {
	if g.lim.MaxConcurrentScans == 0 {
		return
	}
	g.activeScans.Add(-1)
	signal(g.scanSig)
}

// waitSlow is the blocking admission path: retry on every capacity-release
// signal until admitted, MaxWait elapses (ErrBusy), or ctx is cancelled.
func (g *governor) waitSlow(ctx context.Context, sig chan struct{}, try func() bool) error {
	if g.lim.MaxWait <= 0 {
		g.rejects.Add(1)
		g.met.admissionRejects.Inc()
		return ErrBusy
	}
	g.waits.Add(1)
	g.met.admissionWaits.Inc()
	timer := time.NewTimer(g.lim.MaxWait)
	defer timer.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		select {
		case <-sig:
			if try() {
				// A release's wakeup may stand for several releases; pass it
				// on so other waiters re-try too.
				signal(sig)
				return nil
			}
		case <-timer.C:
			if try() {
				return nil
			}
			g.rejects.Add(1)
			g.met.admissionRejects.Inc()
			return ErrBusy
		case <-done:
			return ctx.Err()
		}
	}
}

// signal performs the non-blocking capacity-release broadcast.
func signal(sig chan struct{}) {
	select {
	case sig <- struct{}{}:
	default:
	}
}

// GovernorStats is a point-in-time view of the resource governor.
type GovernorStats struct {
	// InFlightIngestBytes / ActiveScans are the budgets' current occupancy.
	InFlightIngestBytes int64
	ActiveScans         int64
	// Waits counts operations that blocked for capacity; Rejects those that
	// failed with ErrBusy; Sheds the scans dropped during SLO breaches.
	Waits, Rejects, Sheds int64
	// Breach is the latest SLO watchdog verdict the governor saw.
	Breach bool
	// TenantInFlightBytes is the per-tenant occupancy (nil without shares).
	TenantInFlightBytes map[string]int64
}

// GovernorStats reports admission-control occupancy and outcomes. Zero value
// when Options.Limits is unset.
func (s *Store) GovernorStats() GovernorStats {
	g := s.gov
	if g == nil {
		return GovernorStats{}
	}
	st := GovernorStats{
		InFlightIngestBytes: g.inflightBytes.Load(),
		ActiveScans:         g.activeScans.Load(),
		Waits:               g.waits.Load(),
		Rejects:             g.rejects.Load(),
		Sheds:               g.sheds.Load(),
		Breach:              g.breach.Load(),
	}
	if g.tenantInflight != nil {
		st.TenantInFlightBytes = make(map[string]int64, len(g.tenantInflight))
		for tenant, c := range g.tenantInflight {
			st.TenantInFlightBytes[tenant] = c.Load()
		}
	}
	return st
}
