package fishstore

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"fishstore/internal/metrics"
	"fishstore/internal/psf"
)

// TestSubscribeDropNewest pins the default slow-subscriber policy: a full
// buffer drops the incoming record, keeps the oldest window, counts every
// drop on the subscription, and exports the total through
// fishstore_subscription_dropped_total.
func TestSubscribeDropNewest(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openTestStore(t, Options{Metrics: reg})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}

	sub := s.Subscribe(PropertyString(id, "spark"), 1)
	defer sub.Cancel()

	batch := make([][]byte, 10)
	for i := range batch {
		batch[i] = genEvent(1000+i, "PushEvent", "spark")
	}
	ingestAll(t, s, batch)

	if got := sub.Dropped(); got != 9 {
		t.Fatalf("Dropped() = %d, want 9 (buffer 1, 10 matches)", got)
	}
	if got := s.metrics.subDropped.Load(); got != 9 {
		t.Fatalf("fishstore_subscription_dropped_total = %d, want 9", got)
	}
	// DropNewest keeps the oldest record: the first ingested match.
	rec := <-sub.Records()
	if !strings.Contains(string(rec.Payload), `"id": 1000`) {
		t.Fatalf("buffered record is %s, want the oldest (id 1000)", rec.Payload)
	}
}

// TestSubscribeDropOldest is the regression test for the DropOldest policy:
// the buffer must hold the freshest window after a burst, with every evicted
// record counted.
func TestSubscribeDropOldest(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}

	sub := s.SubscribeWith(PropertyString(id, "spark"),
		SubscribeOptions{Buffer: 1, Policy: DropOldest})
	defer sub.Cancel()

	batch := make([][]byte, 10)
	for i := range batch {
		batch[i] = genEvent(2000+i, "PushEvent", "spark")
	}
	ingestAll(t, s, batch)

	if got := sub.Dropped(); got != 9 {
		t.Fatalf("Dropped() = %d, want 9", got)
	}
	// DropOldest keeps the newest record: the last ingested match.
	rec := <-sub.Records()
	if !strings.Contains(string(rec.Payload), `"id": 2009`) {
		t.Fatalf("buffered record is %s, want the newest (id 2009)", rec.Payload)
	}
}

// TestSubscribeBlockLossless: under the Block policy a slow consumer
// receives every match in order — ingestion stalls rather than drops.
func TestSubscribeBlockLossless(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}

	sub := s.SubscribeWith(PropertyString(id, "spark"),
		SubscribeOptions{Buffer: 1, Policy: Block})
	defer sub.Cancel()

	const n = 25
	var wg sync.WaitGroup
	wg.Add(1)
	var got []string
	go func() {
		defer wg.Done()
		for rec := range sub.Records() {
			// Deliberately slow consumer: the 1-slot buffer fills instantly.
			time.Sleep(200 * time.Microsecond)
			got = append(got, string(rec.Payload))
			if len(got) == n {
				return
			}
		}
	}()

	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = genEvent(3000+i, "PushEvent", "spark")
	}
	ingestAll(t, s, batch)
	wg.Wait()

	if sub.Dropped() != 0 {
		t.Fatalf("Block policy dropped %d records", sub.Dropped())
	}
	if len(got) != n {
		t.Fatalf("consumer saw %d records, want %d", len(got), n)
	}
	for i, p := range got {
		if want := `"id": ` + itoa(3000+i); !strings.Contains(p, want) {
			t.Fatalf("record %d out of order: %s (want %s)", i, p, want)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestSubscribeBlockContextCancel: a Block subscriber whose context dies
// while ingestion is stalled on its full buffer must release the ingester
// instead of wedging it forever.
func TestSubscribeBlockContextCancel(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sub := s.SubscribeWith(PropertyString(id, "spark"),
		SubscribeOptions{Buffer: 1, Policy: Block, Context: ctx})

	// Nobody drains: the first match fills the buffer, the second blocks the
	// ingesting goroutine until cancel() fires.
	done := make(chan error, 1)
	go func() {
		sess := s.NewSession()
		defer sess.Close()
		_, err := sess.Ingest([][]byte{
			genEvent(1, "PushEvent", "spark"),
			genEvent(2, "PushEvent", "spark"),
			genEvent(3, "PushEvent", "spark"),
		})
		done <- err
	}()

	select {
	case err := <-done:
		t.Fatalf("ingest returned (%v) before cancel: Block never blocked", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ingest after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ingest still wedged 5s after subscription context cancel")
	}

	// The AfterFunc cancel closed the channel; draining must terminate.
	for range sub.Records() {
	}
	if !sub.closed.Load() {
		t.Fatal("subscription not closed by context cancellation")
	}
}
