package fishstore

import (
	"errors"
	"io"
	"time"

	"fishstore/internal/metrics"
	"fishstore/internal/parser"
	"fishstore/internal/parser/pjson"
	"fishstore/internal/storage"
	"fishstore/internal/telemetry"
	"fishstore/internal/trace"
)

// Options configures a Store. The zero value plus defaults gives an
// in-memory (null device) store with the partial JSON parser — the
// configuration the paper's in-memory ingestion experiments use.
type Options struct {
	// Parser creates thread-local parser sessions for ingestion workers.
	// Defaults to the partial JSON parser (pjson). Use fulljson.New() for
	// the FishStore-RJ baseline or pcsv.New(header) for CSV data.
	Parser parser.Factory

	// Device persists log pages. nil means a discarding null device: the
	// log is bounded by the in-memory circular buffer and older pages
	// become unreadable (fine for ingestion benchmarks and streaming use).
	Device storage.Device

	// PageBits sets the log page size to 1<<PageBits bytes (default 20 =
	// 1MB).
	PageBits uint

	// MemPages sets the circular buffer size in pages (default 16; the
	// paper's default memory budget is 2GB).
	MemPages int

	// TableBuckets sets the hash table size in 64-byte buckets (default
	// 1<<16 = 4MB). Rounded up to a power of two.
	TableBuckets int

	// OverflowBuckets caps overflow buckets (default TableBuckets/4).
	OverflowBuckets int

	// BadCAS enables the naive invalidate-and-reallocate strategy on hash
	// chain CAS failures instead of Algorithm 1. Exists only to reproduce
	// the Fig 17 ablation; never enable it in real use.
	BadCAS bool

	// CollectPhaseStats turns on per-phase CPU timing (parse / PSF eval /
	// memcpy / index / others) used by the Fig 13 breakdown. Adds two
	// clock reads per phase per record.
	CollectPhaseStats bool

	// Metrics is the registry the store reports into. nil consults the
	// process-wide default (SetDefaultMetricsRegistry) and, when that too is
	// unset, disables metrics: every instrumented site degrades to a nil
	// check. Several stores may share one registry.
	Metrics *metrics.Registry

	// TraceSink, if set, receives structured control-plane events
	// (checkpoints, PSF state transitions, prefetch window changes, epoch
	// drains, hash table growth, slow operations). Requires Metrics.
	TraceSink metrics.TraceSink

	// SlowOpThreshold makes operations slower than it emit *.slow trace
	// events. Zero disables slow-operation tracing.
	SlowOpThreshold time.Duration

	// FlightRecorderSize is the capacity (in events) of the crash flight
	// recorder: a lock-free ring that retains the most recent trace events
	// and is dumped on VerifyLog corruption and on demand (DumpFlight,
	// /debug/fishstore/flight). 0 means the default (256); negative disables
	// the recorder. When enabled, the recorder becomes the registry's trace
	// sink and tees every event to Options.TraceSink.
	FlightRecorderSize int

	// FlightDumpWriter, if set, receives an automatic JSON-lines flight dump
	// whenever VerifyLog detects corruption.
	FlightDumpWriter io.Writer

	// ScanDecisionLog is the number of recent scan decisions retained for
	// /debug/fishstore/scan and fishstore-cli inspect: per-segment
	// index/full choices plus the cost-model inputs (Φ) each adaptive scan
	// used. 0 means the default (64); negative disables the decision log.
	ScanDecisionLog int

	// DisableRecordChecksums writes format-v0 records without the per-record
	// checksum trailer (8 bytes/record smaller, no CRC at flush). Readers
	// accept both formats regardless of this setting, so a store may be
	// reopened with either value; only newly ingested records are affected.
	// Leave false outside of benchmarks: without checksums a torn flush at
	// the log tail can survive recovery with a zeroed payload.
	DisableRecordChecksums bool

	// VerifyOnRead validates the checksum of every record fetched from the
	// device on the scan, chain-walk, and indirect-resolution paths. A record
	// that fails is quarantined: skipped (and its chain not followed), counted
	// in ScanStats.Quarantined and the fishstore_corrupt_records_total metric,
	// and logged to the flight recorder with its address — never surfaced to
	// the user. In-memory records are exempt (they are sealed only at flush).
	VerifyOnRead bool

	// IORetry, if set, wraps Device in storage.Retrying: transient read and
	// write errors (per the policy's Classify, default storage.IsTransient)
	// are retried with bounded exponential backoff and jitter. Each retry is
	// counted in fishstore_io_retries_total and traced.
	IORetry *storage.RetryPolicy

	// Tracer, if set, receives operation spans: a parent/child tree per
	// ingest batch, scan, checkpoint, recovery, page flush, and device I/O,
	// exportable as Chrome trace-event JSON (/debug/fishstore/spans,
	// fishstore-cli trace). nil consults the process-wide default
	// (SetDefaultTracer); when that too is unset, spans are disabled and
	// every instrumented site degrades to one atomic load. Root spans are
	// teed (as span.* trace events) into the metrics trace pipeline — the
	// flight recorder and TraceSink — so the crash timeline and the span
	// timeline stay on one stream.
	Tracer *trace.Tracer

	// PageCachePages bounds the read-through page cache over on-device log
	// pages: scans and chain walks fill it on cold reads and later reads of
	// the same page are served from memory. 0 means the default (64 pages);
	// negative disables the cache (every cold read is a device hit, the
	// pre-cache behaviour). Cached pages are invalidated by TruncateUntil.
	PageCachePages int

	// HotChainEntries bounds the hot-chain cache: chains probed repeatedly
	// (the same property scanned again with no interleaving truncation) have
	// their on-device link layout memoized so re-probes skip the pointer
	// chase entirely. 0 means the default (128 chains); negative disables it.
	HotChainEntries int

	// DisablePageSummaries turns off the per-page PSF membership summaries
	// (bloom filters built at page-flush time) that let index-complete scans
	// skip on-device pages containing no matching key pointers.
	DisablePageSummaries bool

	// DisableTelemetry turns off the workload-attribution layer (per-op
	// latency sketches, PSF / property / tenant heavy hitters,
	// /debug/fishstore/workload). Telemetry is on by default — its hot-path
	// cost is a few atomic adds per batch — and is independent of Metrics:
	// the sketches work with a disabled registry too.
	DisableTelemetry bool

	// TenantLabel, if set, is consulted once per ingest batch and once per
	// scan to attribute that operation's records and bytes to a
	// caller/tenant heavy-hitter dimension (the Record Layer-style
	// multi-tenant accounting hook). It is called from the operation's own
	// goroutine and must be cheap and concurrency-safe.
	TenantLabel func() string

	// SLO, if set, starts a watchdog goroutine that evaluates the given
	// latency targets every SLO.Interval, publishes burn rates as
	// fishstore_slo_burn gauges, emits slo.burn trace events into the
	// flight recorder while an objective is burning, and folds the verdict
	// into /debug/fishstore/health. Requires telemetry (ignored when
	// DisableTelemetry is set).
	SLO *telemetry.SLO

	// ProfileLabels attaches runtime/pprof goroutine labels (operation,
	// phase, psf, mode) to the ingest, scan, and flush paths, so CPU
	// profiles attribute samples to the same taxonomy spans use. Scan
	// workers inherit their scan's labels. Adds a few runtime label swaps
	// per record on the ingest path; leave off unless profiling.
	ProfileLabels bool

	// Limits, if set, enables the store-level resource governor: ingest
	// batches count against MaxInFlightIngestBytes (over-limit callers block
	// up to MaxWait, then fail with ErrBusy), scans count against
	// MaxConcurrentScans, tenants can be given weighted shares of the ingest
	// budget, and — when the SLO watchdog reports a breach — scans submitted
	// with a negative ScanOptions.Priority are shed with ErrBusy. nil keeps
	// the historical unbounded behaviour. The admission fast path is a pair
	// of atomic adds; the governor allocates only when an operation actually
	// has to wait.
	Limits *Limits

	// Retention, if set, bounds the live log footprint and arms the
	// disk-full recovery path: an ENOSPC-class flush failure puts the store
	// into the managed ErrLogFull state (instead of sticky degraded mode),
	// and RecoverLogSpace — invoked automatically on the next ingest when
	// AutoRecover is set — truncates the oldest log pages down to
	// MaxLiveBytes, reclaims the device space, re-drives the failed flushes,
	// and resumes ingestion.
	Retention *Retention
}

// Limits configures the resource governor; see Options.Limits. The zero
// value of any field means "unlimited" for that dimension.
type Limits struct {
	// MaxInFlightIngestBytes caps the total raw bytes of ingest batches
	// admitted and not yet returned. A batch that would exceed the cap waits
	// up to MaxWait for capacity, then fails with ErrBusy.
	MaxInFlightIngestBytes int64

	// MaxConcurrentScans caps concurrently running scans (Lookup counts as a
	// scan). Over-limit scans wait up to MaxWait, then fail with ErrBusy.
	MaxConcurrentScans int64

	// MaxWait bounds how long an over-limit operation blocks for capacity
	// before failing with ErrBusy. Zero means fail fast. The operation's
	// context, when it expires sooner, wins.
	MaxWait time.Duration

	// TenantShares divides MaxInFlightIngestBytes between tenants (keyed by
	// the value Options.TenantLabel returns): each named tenant may hold at
	// most share/totalShares of the ingest-byte budget. Tenants not in the
	// map (and all traffic when TenantLabel is unset) are limited only by
	// the global cap. The map is read-only after Open.
	TenantShares map[string]int64

	// ShedScansOnBreach, when true, rejects scans whose ScanOptions.Priority
	// is negative with ErrBusy while the SLO watchdog (Options.SLO) reports
	// a breach — load-shedding the work the caller marked discardable first.
	ShedScansOnBreach bool
}

// Retention configures retention-driven space reclamation; see
// Options.Retention.
type Retention struct {
	// MaxLiveBytes is the target live log footprint (tail minus truncation
	// point). RecoverLogSpace truncates whole pages from the oldest end of
	// the log until the footprint is at most this. 0 disables
	// retention-driven truncation (RecoverLogSpace then only reclaims what
	// the caller already truncated manually).
	MaxLiveBytes uint64

	// AutoRecover makes the next ingest after an ErrLogFull transition run
	// RecoverLogSpace automatically, so a capped device oscillates between
	// filling and reclaiming instead of failing until an operator steps in.
	AutoRecover bool
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Parser == nil {
		out.Parser = pjson.New()
	}
	if out.PageBits == 0 {
		out.PageBits = 20
	}
	if out.PageBits < 12 || out.PageBits > 30 {
		return out, errors.New("fishstore: PageBits out of range [12,30]")
	}
	if out.MemPages == 0 {
		out.MemPages = 16
	}
	if out.MemPages < 2 {
		return out, errors.New("fishstore: MemPages must be >= 2")
	}
	if out.TableBuckets == 0 {
		out.TableBuckets = 1 << 16
	}
	if out.OverflowBuckets == 0 {
		out.OverflowBuckets = out.TableBuckets / 4
		if out.OverflowBuckets < 64 {
			out.OverflowBuckets = 64
		}
	}
	if out.FlightRecorderSize == 0 {
		out.FlightRecorderSize = 256
	}
	if out.ScanDecisionLog == 0 {
		out.ScanDecisionLog = 64
	}
	if out.PageCachePages == 0 {
		out.PageCachePages = 64
	}
	if out.HotChainEntries == 0 {
		out.HotChainEntries = 128
	}
	if out.Limits != nil {
		if out.Limits.MaxInFlightIngestBytes < 0 || out.Limits.MaxConcurrentScans < 0 {
			return out, errors.New("fishstore: Limits caps must be >= 0")
		}
		for tenant, share := range out.Limits.TenantShares {
			if share <= 0 {
				return out, errors.New("fishstore: TenantShares[" + tenant + "] must be > 0")
			}
		}
		if len(out.Limits.TenantShares) > 0 && out.Limits.MaxInFlightIngestBytes == 0 {
			return out, errors.New("fishstore: TenantShares requires MaxInFlightIngestBytes")
		}
	}
	return out, nil
}
