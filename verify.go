package fishstore

import (
	"errors"
	"fmt"
	"io"

	"fishstore/internal/hashtable"
	"fishstore/internal/hlog"
	"fishstore/internal/metrics"
	"fishstore/internal/record"
	"fishstore/internal/storage"
	"fishstore/internal/wordio"
)

// This file implements the fsck-style log verifier (and the durable-end
// probe recovery is built on): a single-pass walk over the on-device record
// layout that validates every header, key-pointer region, and hash chain,
// reporting the first corruption with its address. Appendix E of the paper
// claims a fuzzy checkpoint plus single-pass suffix replay restores the
// store after a crash; the verifier is the executable form of that claim.

// Corruption describes the first integrity violation a verifier found.
type Corruption struct {
	// Address is the log address of the corrupt structure.
	Address uint64
	// Kind classifies the violation (e.g. "record", "dangling-pointer",
	// "chain-forward-link", "truncated-log").
	Kind string
	// Detail is a human-readable description.
	Detail string
}

func (c Corruption) String() string {
	return fmt.Sprintf("%s at %d: %s", c.Kind, c.Address, c.Detail)
}

// VerifyReport summarizes a verification pass.
type VerifyReport struct {
	// From/To is the requested region; End is where the record walk stopped.
	From, To, End uint64
	// Records, Fillers, KeyPointers count the structures walked.
	Records, Fillers, KeyPointers int64
	// SealedRecords counts format-v1 records whose checksum trailer was
	// verified; UncheckedRecords counts v0 (pre-checksum) records, which
	// carry nothing to verify.
	SealedRecords, UncheckedRecords int64
	// ChainsWalked / ChainLinks count the hash-chain phase (store verify
	// only; zero for device-level verification).
	ChainsWalked, ChainLinks int64
	// Corruption is the first violation found, or nil if the log is clean.
	Corruption *Corruption
}

// OK reports whether verification found no corruption.
func (r VerifyReport) OK() bool { return r.Corruption == nil }

// walkDeviceLog walks the record layout on dev from `from`, structurally
// validating every record, and calls visit (if non-nil) for each valid one
// (fillers included). It returns the first address not covered by a valid
// record, plus a non-empty `why` when the walk stopped on a structural
// violation rather than a clean end (zero header, partially durable record,
// an invisible record at the durable frontier, data running out, reaching
// `to`, or visit returning false). A `to` of 0 means unbounded. Real device
// I/O errors are returned as err; end-of-device (io.EOF) is a clean end —
// recovery must never mistake a transient read fault for the log's end.
func walkDeviceLog(dev storage.Device, pageBits uint, from, to uint64,
	visit func(addr uint64, h record.Header, v record.View) bool) (end uint64, why string, pages int, err error) {

	pageSize := uint64(1) << pageBits
	buf := make([]byte, pageSize)
	words := make([]uint64, pageSize/8)
	addr := from
	for {
		if to != 0 && addr >= to {
			return addr, "", pages, nil
		}
		pageStart := addr &^ (pageSize - 1)
		n, rerr := dev.ReadAt(buf, int64(pageStart))
		if rerr != nil && !errors.Is(rerr, io.EOF) && !errors.Is(rerr, io.ErrUnexpectedEOF) {
			return addr, "", pages, fmt.Errorf("fishstore: log read at %d: %w", pageStart, rerr)
		}
		if n < 0 {
			n = 0
		}
		pages++
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		wordio.BytesToWords(words, buf)
		off := addr - pageStart
		for {
			recAddr := pageStart + off
			if to != 0 && recAddr >= to {
				return recAddr, "", pages, nil
			}
			if off+8 > uint64(n) {
				return recAddr, "", pages, nil // header not fully durable
			}
			hw := words[off/8]
			if hw == 0 {
				return recAddr, "", pages, nil // unwritten region: end of log
			}
			h := record.UnpackHeader(hw)
			if h.SizeWords == 0 {
				return recAddr, "nonzero header word with zero record size", pages, nil
			}
			size := uint64(h.SizeWords) * 8
			if size > pageSize-off {
				return recAddr, fmt.Sprintf("record of %d bytes overruns its page", size), pages, nil
			}
			if off+size > uint64(n) {
				return recAddr, "", pages, nil // body not fully durable
			}
			if !h.Filler && !h.Visible {
				return recAddr, "", pages, nil // incomplete record at the frontier
			}
			v := record.View{Words: words[off/8 : off/8+uint64(h.SizeWords)]}
			if !h.Filler {
				if reason := validateRecord(recAddr, h, v); reason != "" {
					return recAddr, reason, pages, nil
				}
				if !v.ChecksumOK() {
					// A v1 record whose body does not match its sealed
					// trailer: a torn flush zeroed part of the payload, or
					// the media flipped bits. Recovery truncates here.
					return recAddr, "record checksum mismatch (torn or corrupt payload)", pages, nil
				}
			}
			if visit != nil && !visit(recAddr, h, v) {
				return recAddr, "", pages, nil
			}
			off += size
			if off >= pageSize {
				break
			}
		}
		addr = pageStart + pageSize
	}
}

// validateRecord deep-checks a record's internal layout: region sizes, key
// pointer back-offsets (which a torn write zeroes), pointer modes, value
// bounds, and the no-forward-link invariant. Returns "" when consistent.
//
// Reasons are constant strings: this also runs per record on the
// VerifyOnRead quarantine path, where a fmt.Sprintf per rejected record
// boxes its operands on the heap (hotalloc). The record's address is
// reported by every caller, and the specific bad values are recoverable
// from the record image at that address.
func validateRecord(addr uint64, h record.Header, v record.View) string {
	first := record.HeaderWords + h.NumPtrs*record.WordsPerPointer + h.ValueWords
	if first+h.TrailerWords() > h.SizeWords {
		return "pointer/value/trailer regions exceed record size"
	}
	payloadLen := (h.SizeWords-h.TrailerWords()-first)*8 - h.PayloadPad
	if payloadLen < 0 {
		return "payload padding exceeds payload region"
	}
	if h.Indirect && payloadLen != 8 {
		return "indirect record payload is not a single address"
	}
	for i := 0; i < h.NumPtrs; i++ {
		w := v.PointerWordIndex(i)
		kp := v.KeyPointerAt(i)
		if kp.Mode > record.ModeValueRegion {
			return "key pointer: invalid mode"
		}
		if kp.OffsetWords != w {
			return "key pointer: back-offset does not match position (torn write?)"
		}
		kptAddr := addr + uint64(w)*8
		if p := kp.PrevAddress; p != 0 {
			if p >= kptAddr {
				return "key pointer: forward link"
			}
			if p < hlog.BeginAddress || p%8 != 0 {
				return "key pointer: implausible prev address"
			}
		}
		switch kp.Mode {
		case record.ModePayload:
			if kp.ValOffset+kp.ValSize > payloadLen {
				return "key pointer: value outside payload"
			}
		case record.ModeValueRegion:
			if kp.ValOffset+kp.ValSize > h.ValueWords*8 {
				return "key pointer: value outside value region"
			}
		}
	}
	return ""
}

// verifyImage walks [from, to) on the device, validating records and the
// pointer graph, and returns the set of key-pointer addresses seen (for the
// chain phase). Prev links pointing at or above `from` must land on a
// previously seen key pointer; links below `from` cannot be checked (the
// walk did not cover them) and are accepted.
func verifyImage(dev storage.Device, pageBits uint, from, to uint64) (VerifyReport, map[uint64]struct{}, error) {
	rep := VerifyReport{From: from, To: to}
	seen := make(map[uint64]struct{})
	var corrupt *Corruption
	end, why, _, err := walkDeviceLog(dev, pageBits, from, to,
		func(addr uint64, h record.Header, v record.View) bool {
			if h.Filler {
				rep.Fillers++
				return true
			}
			rep.Records++
			if h.Checksum {
				rep.SealedRecords++ // walkDeviceLog already verified it
			} else {
				rep.UncheckedRecords++
			}
			for i := 0; i < h.NumPtrs; i++ {
				kptAddr := addr + uint64(v.PointerWordIndex(i))*8
				kp := v.KeyPointerAt(i)
				rep.KeyPointers++
				if p := kp.PrevAddress; p >= from && p != 0 {
					if _, ok := seen[p]; !ok {
						corrupt = &Corruption{
							Address: kptAddr,
							Kind:    "dangling-pointer",
							Detail:  fmt.Sprintf("prev link %d is not a key pointer address", p),
						}
						return false
					}
				}
				seen[kptAddr] = struct{}{}
			}
			return true
		})
	rep.End = end
	if err != nil {
		return rep, seen, err
	}
	switch {
	case corrupt != nil:
		rep.Corruption = corrupt
	case why != "":
		rep.Corruption = &Corruption{Address: end, Kind: "record", Detail: why}
	case to != 0 && end < to:
		rep.Corruption = &Corruption{
			Address: end,
			Kind:    "truncated-log",
			Detail:  fmt.Sprintf("valid records end at %d, expected durable through %d", end, to),
		}
	}
	return rep, seen, nil
}

// VerifyDevice fsck-walks a log image directly on a storage device without
// opening a store: every record header, key-pointer region, and prev link in
// [from, to) is validated, and the first corruption is reported with its
// address. from of 0 means the log's begin address; to of 0 walks until the
// durable end (useful without a manifest, but unable to distinguish a torn
// tail from the true end — pass the checkpoint manifest's Tail as `to` to
// detect truncation). fishstore-cli's `verify` subcommand wraps this.
func VerifyDevice(dev storage.Device, pageBits uint, from, to uint64) (VerifyReport, error) {
	if pageBits < 12 || pageBits > 30 {
		return VerifyReport{}, fmt.Errorf("fishstore: verify PageBits %d out of range [12,30]", pageBits)
	}
	if from == 0 {
		from = hlog.BeginAddress
	}
	rep, _, err := verifyImage(dev, pageBits, from, to)
	return rep, err
}

// VerifyOptions configures VerifyLog.
type VerifyOptions struct {
	// From / To bound the verified region. Zero means [ChainFloor,
	// FlushedUntil): the durable, non-truncated portion of the log.
	From, To uint64
	// SkipChains skips the hash-chain phase (the sequential record walk
	// plus pointer-graph check only). The chain phase holds the checkpoint
	// barrier and keeps one address per key pointer in memory.
	SkipChains bool
}

// VerifyLog verifies the store's own durable log image and its subset hash
// index: (1) a sequential walk validating every record and key-pointer
// region on the device, (2) a pointer-graph check that every prev link lands
// on a real key pointer at a lower address (no forward links, no dangling
// pointers), and (3) a walk of every hash chain from its table head,
// asserting strictly descending, non-dangling links down to the chain floor.
// The chain phase briefly holds the checkpoint barrier so ingestion cannot
// move chain heads mid-walk. The log device must support reads (not Null).
func (s *Store) VerifyLog(opts VerifyOptions) (VerifyReport, error) {
	from := opts.From
	if from == 0 {
		from = s.ChainFloor()
	}
	to := opts.To
	if to == 0 {
		to = s.log.FlushedUntil()
	}
	rep, seen, err := verifyImage(s.log.Device(), s.opts.PageBits, from, to)
	if err != nil || rep.Corruption != nil || opts.SkipChains {
		s.reportCorruption(rep.Corruption)
		return rep, err
	}

	// Chain phase: quiesce ingestion (chain heads must not move) and walk
	// every chain through the same resolution path index scans use.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	g := s.epoch.Acquire()
	defer g.Release()
	var st ScanStats // chain-walk I/O accounting, discarded
	var corrupt *Corruption
	s.table.Range(func(_ uint64, e hashtable.Entry, _ hashtable.Slot) bool {
		head := e.Address
		if head == 0 {
			return true
		}
		rep.ChainsWalked++
		lowest := ^uint64(0)
		// Links below `from` terminate the walk (the chain floor): records
		// below a truncation point are gone and cannot be checked.
		werr := s.forEachChainLink(nil, g, head, from, false, nil, &st,
			func(kptAddr uint64, view record.View, base uint64, kp record.KeyPointer) bool {
				if kptAddr >= lowest {
					corrupt = &Corruption{
						Address: kptAddr,
						Kind:    "chain-forward-link",
						Detail:  fmt.Sprintf("chain link %d does not descend (previous link %d)", kptAddr, lowest),
					}
					return false
				}
				lowest = kptAddr
				if kptAddr < to {
					if _, ok := seen[kptAddr]; !ok {
						corrupt = &Corruption{
							Address: kptAddr,
							Kind:    "dangling-chain-link",
							Detail:  "chain passes through an address that holds no key pointer",
						}
						return false
					}
				}
				rep.ChainLinks++
				return true
			})
		if werr != nil && corrupt == nil {
			corrupt = &Corruption{Address: head, Kind: "chain-io", Detail: werr.Error()}
		}
		return corrupt == nil
	})
	rep.Corruption = corrupt
	s.reportCorruption(rep.Corruption)
	return rep, nil
}

// reportCorruption emits the corruption as a trace event (so it lands in
// the flight recorder) and then dumps the recorder to the configured
// FlightDumpWriter — the crash-analysis artifact: the last trace events
// leading up to the first detected integrity violation.
func (s *Store) reportCorruption(c *Corruption) {
	if c == nil {
		return
	}
	s.metrics.reg.Trace("verify.corruption",
		metrics.F("address", c.Address),
		metrics.F("kind", c.Kind),
		metrics.F("detail", c.Detail))
	if w := s.opts.FlightDumpWriter; w != nil {
		_ = s.DumpFlight(w)
	}
}
