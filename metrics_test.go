package fishstore

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fishstore/internal/metrics"
	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// TestConcurrentIngestMetrics runs N ingesting sessions while a goroutine
// polls Store.Metrics(), asserting counters only move forward and that the
// final totals equal the sum of per-session IngestStats. Run with -race.
func TestConcurrentIngestMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openTestStore(t, Options{Metrics: reg, CollectPhaseStats: true})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}

	const workers, batches, perBatch = 4, 25, 16
	var wantRecords, wantBytes, wantProps int64
	var totalsMu sync.Mutex

	stopPoll := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		var lastRecords, lastBytes float64
		for {
			snap := s.Metrics()
			r := snap.Value("fishstore_ingest_records_total")
			b := snap.Value("fishstore_ingest_bytes_total")
			if r < lastRecords || b < lastBytes {
				t.Errorf("counter went backwards: records %g -> %g, bytes %g -> %g",
					lastRecords, r, lastBytes, b)
				return
			}
			lastRecords, lastBytes = r, b
			select {
			case <-stopPoll:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			var recs, byts, props int64
			for b := 0; b < batches; b++ {
				batch := make([][]byte, perBatch)
				for i := range batch {
					batch[i] = genEvent(w*10000+b*perBatch+i, "PushEvent", "spark")
				}
				st, err := sess.Ingest(batch)
				if err != nil {
					t.Error(err)
					return
				}
				recs += int64(st.Records)
				byts += st.Bytes
				props += int64(st.Properties)
			}
			totalsMu.Lock()
			wantRecords += recs
			wantBytes += byts
			wantProps += props
			totalsMu.Unlock()
		}(w)
	}
	wg.Wait()
	close(stopPoll)
	<-pollDone

	snap := s.Metrics()
	if got := int64(snap.Value("fishstore_ingest_records_total")); got != wantRecords {
		t.Fatalf("records_total = %d, want %d (sum of per-session stats)", got, wantRecords)
	}
	if got := int64(snap.Value("fishstore_ingest_bytes_total")); got != wantBytes {
		t.Fatalf("bytes_total = %d, want %d", got, wantBytes)
	}
	if got := int64(snap.Value("fishstore_ingest_properties_total")); got != wantProps {
		t.Fatalf("properties_total = %d, want %d", got, wantProps)
	}
	// Metrics agree with the legacy Stats() counters.
	st := s.Stats()
	if st.IngestedRecords != wantRecords || st.IngestedBytes != wantBytes {
		t.Fatalf("Stats() = %+v disagrees with session sums (%d records, %d bytes)",
			st, wantRecords, wantBytes)
	}
	// Batch latency histogram saw every batch; phase histograms are populated.
	m, ok := snap.Find("fishstore_ingest_batch_seconds")
	if !ok || m.Count != workers*batches {
		t.Fatalf("batch_seconds count = %d, want %d", m.Count, workers*batches)
	}
	for _, phase := range []string{"parse", "psf_eval", "memcpy", "index", "others"} {
		pm, ok := snap.Find("fishstore_ingest_phase_seconds", metrics.L("phase", phase))
		if !ok || pm.Count == 0 {
			t.Fatalf("phase histogram %q empty", phase)
		}
	}
	if rm, _ := snap.Find("fishstore_ingest_record_bytes"); int64(rm.Count) != wantRecords {
		t.Fatalf("record_bytes count = %d, want %d", rm.Count, wantRecords)
	}
}

// TestScanAndDeviceMetrics exercises the scan, prefetch, and device families
// against an on-device store.
func TestScanAndDeviceMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	dev := storage.NewSimSSD(storage.NewMem(), storage.DefaultSSDProfile())
	s := openTestStore(t, Options{Metrics: reg, Device: dev, PageBits: 12, MemPages: 2})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 400; i++ { // spill well beyond the 2-page buffer
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()

	// Device() must unwrap the instrumentation and return the SimSSD.
	if got := s.Device(); got != storage.Device(dev) {
		t.Fatalf("Device() = %T, want the configured *SimSSD", got)
	}

	var matched int
	st, err := s.Scan(PropertyString(id, "spark"), ScanOptions{},
		func(Record) bool { matched++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if matched != 400 {
		t.Fatalf("matched %d, want 400", matched)
	}

	snap := s.Metrics()
	if got := snap.Value("fishstore_scans_total"); got != 1 {
		t.Fatalf("scans_total = %g", got)
	}
	if got := int64(snap.Value("fishstore_scan_matched_records_total")); got != 400 {
		t.Fatalf("scan_matched = %d", got)
	}
	if got := snap.Value("fishstore_scan_segments_total", metrics.L("kind", "indexed")); got != 1 {
		t.Fatalf("indexed segments = %g", got)
	}
	if got := int64(snap.Value("fishstore_scan_io_reads_total")); got != st.IOs {
		t.Fatalf("io_reads_total = %d, ScanStats.IOs = %d", got, st.IOs)
	}
	// The chain is dense (every record matches), so the adaptive prefetcher
	// must have grown a window and served hops from its buffer.
	if snap.Value("fishstore_prefetch_grows_total") == 0 {
		t.Fatal("prefetcher never grew a window on a dense chain")
	}
	hits := int64(snap.Value("fishstore_prefetch_hits_total"))
	if hits == 0 || st.PrefetchHits == 0 {
		t.Fatalf("prefetch hits: metric %d, ScanStats %d — both should be > 0", hits, st.PrefetchHits)
	}
	// Device reads flowed through the instrumented wrapper.
	if m, _ := snap.Find("fishstore_device_read_seconds"); m.Count == 0 {
		t.Fatal("device read histogram empty after on-device scan")
	}
	if m, _ := snap.Find("fishstore_device_write_seconds"); m.Count == 0 {
		t.Fatal("device write histogram empty after page flushes")
	}
	// Hash-table gauges are live.
	if snap.Value("fishstore_hashtable_used_entries") == 0 {
		t.Fatal("hashtable_used_entries gauge is zero")
	}
	if snap.Value("fishstore_ingest_records_total") != 400 {
		t.Fatal("ingest counter mismatch")
	}
}

// TestMetricsHandlerEndToEnd serves a live store's registry over HTTP and
// checks the Prometheus exposition.
func TestMetricsHandlerEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openTestStore(t, Options{Metrics: reg})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	if _, err := sess.Ingest([][]byte{genEvent(1, "PushEvent", "spark")}); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	srv := httptest.NewServer(metrics.NewMux(reg))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(res.Body)
	res.Body.Close()
	out := body.String()
	for _, want := range []string{
		"# TYPE fishstore_ingest_records_total counter",
		"fishstore_ingest_records_total 1",
		"# TYPE fishstore_ingest_batch_seconds histogram",
		"fishstore_ingest_batch_seconds_count 1",
		"fishstore_psf_active 1",
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestTraceSinkEvents checks structured events fire for PSF transitions,
// checkpoints, and slow operations.
func TestTraceSinkEvents(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := metrics.NewMemorySink(0)
	s := openTestStore(t, Options{
		Metrics:         reg,
		TraceSink:       sink,
		SlowOpThreshold: time.Nanosecond, // everything is "slow"
		Device:          storage.NewMem(),
	})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	if _, err := sess.Ingest([][]byte{genEvent(1, "PushEvent", "spark")}); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	dir := t.TempDir()
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"psf.prepare", "psf.pending", "psf.rest",
		"checkpoint.begin", "checkpoint.end", "ingest.slow_batch"} {
		if len(sink.Named(name)) == 0 {
			t.Errorf("no %q trace event emitted", name)
		}
	}
	end := sink.Named("checkpoint.end")
	if len(end) == 1 {
		hasBytes := false
		for _, f := range end[0].Fields {
			if f.Key == "bytes" {
				hasBytes = true
			}
		}
		if !hasBytes {
			t.Error("checkpoint.end missing bytes field")
		}
	}
}

// TestDisabledMetricsIsInert confirms a store without a registry produces an
// empty snapshot and an unwrapped device.
func TestDisabledMetricsIsInert(t *testing.T) {
	dev := storage.NewMem()
	s := openTestStore(t, Options{Device: dev})
	sess := s.NewSession()
	if _, err := sess.Ingest([][]byte{genEvent(1, "PushEvent", "spark")}); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if n := len(s.Metrics().Families); n != 0 {
		t.Fatalf("disabled store produced %d metric families", n)
	}
	if s.Device() != storage.Device(dev) {
		t.Fatalf("disabled store wrapped its device: %T", s.Device())
	}
	if s.MetricsRegistry().Enabled() {
		t.Fatal("disabled store's registry reports enabled")
	}
}

// TestDefaultRegistryAggregatesStores checks SetDefaultMetricsRegistry routes
// stores opened without an explicit registry into the shared one.
func TestDefaultRegistryAggregatesStores(t *testing.T) {
	reg := metrics.NewRegistry()
	SetDefaultMetricsRegistry(reg)
	defer SetDefaultMetricsRegistry(nil)

	var stores []*Store
	for i := 0; i < 2; i++ {
		s := openTestStore(t, Options{})
		sess := s.NewSession()
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
		sess.Close()
		stores = append(stores, s)
	}
	if got := int64(reg.Snapshot().Value("fishstore_ingest_records_total")); got != 2 {
		t.Fatalf("shared registry records_total = %d, want 2 (one per store)", got)
	}
	if stores[0].MetricsRegistry() != stores[1].MetricsRegistry() {
		t.Fatal("stores did not share the default registry")
	}
}

// TestRecoverMetrics checks Recover wires metrics and reports replay work.
func TestRecoverMetrics(t *testing.T) {
	dev := storage.NewMem()
	s := openTestStore(t, Options{Device: dev, PageBits: 12, MemPages: 2})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 50; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 80; i++ { // durable suffix beyond the checkpoint
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	r, info, err := Recover(dir, RecoverOptions{Options: Options{Device: dev, Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info.ReplayedRecords != 30 {
		t.Fatalf("replayed %d, want 30", info.ReplayedRecords)
	}
	snap := r.Metrics()
	if got := int64(snap.Value("fishstore_recovery_replayed_records_total")); got != 30 {
		t.Fatalf("recovery_replayed metric = %d, want 30", got)
	}
	if m, _ := snap.Find("fishstore_recovery_seconds"); m.Count != 1 {
		t.Fatalf("recovery_seconds count = %d, want 1", m.Count)
	}
}
