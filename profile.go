package fishstore

import (
	"bytes"

	"fishstore/internal/psf"
	"fishstore/internal/record"
)

// ChainHop describes one record on a property's hash chain (used by the
// Fig 19 locality case study).
type ChainHop struct {
	// KptAddr is the key pointer's address.
	KptAddr uint64
	// Base is the record's start address.
	Base uint64
	// SizeBytes is the record's size on the log.
	SizeBytes int
	// Gap is the number of bytes between this record's end and the
	// previous (higher-addressed) chain record's start; 0 for the first.
	Gap uint64
}

// ChainGapProfile walks the hash chain of prop from the tail down,
// returning up to max hops with their inter-record gaps. It reads through
// memory or storage as needed (without adaptive prefetching, so the profile
// reflects raw chain layout).
func (s *Store) ChainGapProfile(prop Property, max int) ([]ChainHop, error) {
	g := s.epoch.Acquire()
	defer g.Release()

	slot, ok := s.table.FindEntry(prop.hash())
	if !ok {
		return nil, nil
	}
	canon := psf.CanonicalValue(prop.Value)
	var hops []ChainHop
	var prevBase uint64
	cur := slot.Address()
	var cr *chainReader
	defer func() { cr.release() }()

	for cur != 0 && (max <= 0 || len(hops) < max) {
		var view record.View
		var base uint64
		if cur >= s.log.HeadAddress() {
			v, b, err := s.inMemoryRecordAt(cur)
			if err != nil {
				return hops, err
			}
			view, base = v, b
		} else {
			if cr == nil {
				cr = newChainReader(nil, s.log, false, nil, s.metrics, nil)
			}
			// On-device records are immutable; do not pin the safe epoch
			// across the chain reader's device I/O.
			g.Unprotect()
			v, b, err := cr.record(cur)
			g.Protect()
			if err != nil {
				return hops, err
			}
			view, base = v, b
		}
		ptrIndex := (int((cur-base)/8) - record.HeaderWords) / record.WordsPerPointer
		kp := view.KeyPointerAt(ptrIndex)
		h := view.Header()
		if h.Visible && !h.Invalid && kp.PSFID == prop.PSF && bytes.Equal(view.ValueBytes(kp), canon) {
			hop := ChainHop{KptAddr: cur, Base: base, SizeBytes: h.SizeWords * 8}
			if prevBase != 0 && prevBase > base+uint64(hop.SizeBytes) {
				hop.Gap = prevBase - (base + uint64(hop.SizeBytes))
			}
			hops = append(hops, hop)
			prevBase = base
		}
		cur = kp.PrevAddress
		if len(hops)%64 == 0 {
			g.Refresh()
		}
	}
	return hops, nil
}

// TailPointer returns the current chain head address for prop (0 if none) —
// a cheap way for tools to check whether a property has any chain.
func (s *Store) TailPointer(prop Property) uint64 {
	slot, ok := s.table.FindEntry(prop.hash())
	if !ok {
		return 0
	}
	return slot.Address()
}
