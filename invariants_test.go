package fishstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// TestNoForwardLinksInvariant verifies the central guarantee of the chain
// update algorithm (Alg 1): after heavy concurrent ingestion, every hash
// chain is strictly descending in address — no forward links exist.
func TestNoForwardLinksInvariant(t *testing.T) {
	s := openTestStore(t, Options{PageBits: 16, MemPages: 4, Device: storage.NewMem()})
	// One projection with few distinct values (hot chains, heavy CAS
	// contention) plus one with many values.
	idType, _, _ := s.RegisterPSF(psf.Projection("type"))
	idActor, _, _ := s.RegisterPSF(psf.Projection("actor.name"))

	const workers = 8
	const perWorker = 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < perWorker; i++ {
				typ := "PushEvent"
				if i%3 == 0 {
					typ = "IssuesEvent"
				}
				if _, err := sess.Ingest([][]byte{genEvent(w*perWorker+i, typ, "spark")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	checkChain := func(prop Property, wantLen int) {
		hops, err := s.ChainGapProfile(prop, 0)
		if err != nil {
			t.Fatal(err)
		}
		if wantLen >= 0 && len(hops) != wantLen {
			t.Fatalf("%v: chain length %d, want %d", prop, len(hops), wantLen)
		}
		for i := 1; i < len(hops); i++ {
			if hops[i].KptAddr >= hops[i-1].KptAddr {
				t.Fatalf("%v: forward link! hop %d at %d >= hop %d at %d",
					prop, i, hops[i].KptAddr, i-1, hops[i-1].KptAddr)
			}
		}
	}
	total := workers * perWorker
	issuesPerWorker := 0
	for i := 0; i < perWorker; i++ {
		if i%3 == 0 {
			issuesPerWorker++
		}
	}
	issues := workers * issuesPerWorker
	checkChain(PropertyString(idType, "PushEvent"), total-issues)
	checkChain(PropertyString(idType, "IssuesEvent"), issues)
	// Per-actor chains (10 distinct actor names in genEvent).
	sum := 0
	for a := 0; a < 10; a++ {
		hops, err := s.ChainGapProfile(PropertyString(idActor, fmt.Sprintf("user%d", a)), 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(hops); i++ {
			if hops[i].KptAddr >= hops[i-1].KptAddr {
				t.Fatal("forward link in actor chain")
			}
		}
		sum += len(hops)
	}
	if sum != total {
		t.Fatalf("actor chains cover %d records, want %d", sum, total)
	}
}

// TestNoForwardLinksBadCAS verifies the invariant holds in the ablation
// mode too (reallocation preserves it by construction).
func TestNoForwardLinksBadCAS(t *testing.T) {
	s := openTestStore(t, Options{BadCAS: true, PageBits: 16, MemPages: 4, Device: storage.NewMem()})
	id, _, _ := s.RegisterPSF(psf.Projection("type"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < 100; i++ {
				if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	hops, err := s.ChainGapProfile(PropertyString(id, "PushEvent"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 800 {
		t.Fatalf("chain has %d valid records, want 800", len(hops))
	}
	for i := 1; i < len(hops); i++ {
		if hops[i].KptAddr >= hops[i-1].KptAddr {
			t.Fatal("forward link in badCAS mode")
		}
	}
}

// failingDevice errors on every write after `after` bytes.
type failingDevice struct {
	inner   storage.Device
	after   int64
	written int64
	mu      sync.Mutex
}

var errInjected = errors.New("injected device failure")

func (d *failingDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	d.written += int64(len(p))
	fail := d.written > d.after
	d.mu.Unlock()
	if fail {
		return 0, errInjected
	}
	//lint:ignore sealcover pass-through decorator: the buffer was sealed (or deliberately not) by the caller
	return d.inner.WriteAt(p, off)
}

func (d *failingDevice) ReadAt(p []byte, off int64) (int, error) { return d.inner.ReadAt(p, off) }
func (d *failingDevice) Close() error                            { return d.inner.Close() }

// TestFlushFailureSurfaces injects a device write failure and checks that
// ingestion eventually reports it rather than silently losing data.
func TestFlushFailureSurfaces(t *testing.T) {
	dev := &failingDevice{inner: storage.NewMem(), after: 8 << 10}
	s, err := Open(Options{Device: dev, PageBits: 12, MemPages: 2, TableBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterPSF(psf.Projection("repo.name"))
	sess := s.NewSession()
	var sawErr bool
	for i := 0; i < 2000; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			sawErr = true
			break
		}
	}
	sess.Close()
	if !sawErr {
		// The failure may surface at close instead (async flush).
		if err := s.Close(); err == nil {
			t.Fatal("device failure never surfaced")
		}
		return
	}
	s.Close()
}

// TestScanReadFailureSurfaces checks that index scans report device read
// errors instead of returning partial silence.
func TestScanReadFailureSurfaces(t *testing.T) {
	// Null device: flushed pages are unreadable, so a chain that dips below
	// the head must error.
	s := openTestStore(t, Options{PageBits: 12, MemPages: 2}) // null device
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	sess := s.NewSession()
	for i := 0; i < 300; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if s.HeadAddress() == s.BeginAddress() {
		t.Skip("log never spilled")
	}
	_, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex},
		func(Record) bool { return true })
	if err == nil {
		t.Fatal("scan over unreadable device succeeded")
	}
}

// TestRecordCountConservation: every ingested record is reachable by a
// full scan exactly once, across page boundaries and fillers.
func TestRecordCountConservation(t *testing.T) {
	s := openTestStore(t, Options{PageBits: 12, MemPages: 2, Device: storage.NewMem()})
	id, _, _ := s.RegisterPSF(psf.MustPredicate("all", `id >= 0`))
	sess := s.NewSession()
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	seen := map[uint64]bool{}
	if _, err := s.Scan(PropertyBool(id, true), ScanOptions{Mode: ScanForceFull},
		func(r Record) bool {
			if seen[r.Address] {
				t.Fatalf("record at %d visited twice", r.Address)
			}
			seen[r.Address] = true
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("full scan found %d records, want %d", len(seen), n)
	}
}
