package fishstore

import (
	"testing"

	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// TestBuildHistoricalIndexPropagatesAppendError is the regression test for
// the swallowed appendIndirect error: BuildHistoricalIndex used to ignore
// append failures and still mark the interval covered, silently dropping
// matches from every future chain-planned scan over the range.
func TestBuildHistoricalIndexPropagatesAppendError(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem()})
	sess := s.NewSession()
	for i := 0; i < 30; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	end := s.TailAddress()
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	// Closing the store makes every subsequent log append fail while the
	// already-resident pages remain readable.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	built, err := s.BuildHistoricalIndex(id, 0, end)
	if err == nil {
		t.Fatalf("BuildHistoricalIndex on a closed store reported success (built=%d); append errors were swallowed", built)
	}
}
