package fishstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// genEvent builds a small Github-like JSON record.
func genEvent(i int, typ, repo string) []byte {
	return []byte(fmt.Sprintf(
		`{"id": %d, "type": %q, "actor": {"id": %d, "name": "user%d"}, "repo": {"id": %d, "name": %q}, "public": %v}`,
		i, typ, 100+i%10, i%10, 500+i%5, repo, i%2 == 0))
}

func openTestStore(t testing.TB, opts Options) *Store {
	t.Helper()
	if opts.PageBits == 0 {
		opts.PageBits = 14 // 16KB pages to exercise page crossings
	}
	if opts.MemPages == 0 {
		opts.MemPages = 4
	}
	if opts.TableBuckets == 0 {
		opts.TableBuckets = 1 << 10
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func ingestAll(t testing.TB, s *Store, batch [][]byte) IngestStats {
	t.Helper()
	sess := s.NewSession()
	defer sess.Close()
	st, err := sess.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestIngestAndIndexScanInMemory(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}

	var batch [][]byte
	wantSpark := 0
	for i := 0; i < 200; i++ {
		repo := "spark"
		if i%4 != 0 {
			repo = "flink"
		} else {
			wantSpark++
		}
		batch = append(batch, genEvent(i, "PushEvent", repo))
	}
	st := ingestAll(t, s, batch)
	if st.Records != 200 {
		t.Fatalf("ingested %d records", st.Records)
	}
	if st.Properties != 200 { // every record has a repo.name
		t.Fatalf("properties = %d", st.Properties)
	}

	var got int
	scanSt, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(r Record) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantSpark {
		t.Fatalf("scan matched %d, want %d (stats %+v)", got, wantSpark, scanSt)
	}
	// The whole range was registered before ingestion: one indexed segment.
	if len(scanSt.Plan) != 1 || !scanSt.Plan[0].Indexed {
		t.Fatalf("plan = %+v", scanSt.Plan)
	}
}

func TestPredicatePSFOnlyIndexesMatches(t *testing.T) {
	s := openTestStore(t, Options{})
	def := psf.MustPredicate("spark-push", `repo.name == "spark" && type == "PushEvent"`)
	id, _, err := s.RegisterPSF(def)
	if err != nil {
		t.Fatal(err)
	}
	var batch [][]byte
	want := 0
	for i := 0; i < 100; i++ {
		typ := "PushEvent"
		repo := "spark"
		switch i % 3 {
		case 1:
			typ = "IssuesEvent"
		case 2:
			repo = "heron"
		default:
			want++
		}
		batch = append(batch, genEvent(i, typ, repo))
	}
	ing := ingestAll(t, s, batch)
	if ing.Properties != want {
		t.Fatalf("indexed %d properties, want %d (selective predicate)", ing.Properties, want)
	}
	var got int
	if _, err := s.Scan(PropertyBool(id, true), ScanOptions{}, func(r Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("matched %d, want %d", got, want)
	}
}

func TestRecordOnMultipleChains(t *testing.T) {
	s := openTestStore(t, Options{})
	idRepo, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	idType, _, _ := s.RegisterPSF(psf.Projection("type"))
	defPub := psf.MustPredicate("public", `public == true`)
	idPub, _, _ := s.RegisterPSF(defPub)

	batch := [][]byte{genEvent(0, "PushEvent", "spark")} // i=0: public=true
	ing := ingestAll(t, s, batch)
	if ing.Properties != 3 {
		t.Fatalf("record should be on 3 chains, got %d", ing.Properties)
	}
	for _, prop := range []Property{
		PropertyString(idRepo, "spark"),
		PropertyString(idType, "PushEvent"),
		PropertyBool(idPub, true),
	} {
		var got int
		if _, err := s.Scan(prop, ScanOptions{}, func(Record) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("prop %v matched %d", prop, got)
		}
	}
}

func TestOnDemandIndexingBoundaries(t *testing.T) {
	s := openTestStore(t, Options{})
	// Phase 1: ingest with no PSFs (raw dump).
	var first [][]byte
	for i := 0; i < 50; i++ {
		first = append(first, genEvent(i, "PushEvent", "spark"))
	}
	sess := s.NewSession()
	if _, err := sess.Ingest(first); err != nil {
		t.Fatal(err)
	}

	// Phase 2: register; only later records are indexed.
	id, res, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	if res.SafeRegisterBoundary == 0 {
		t.Fatal("no register boundary")
	}
	var second [][]byte
	for i := 50; i < 100; i++ {
		second = append(second, genEvent(i, "PushEvent", "spark"))
	}
	if _, err := sess.Ingest(second); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	// Auto scan must see all 100 via full scan of the early gap + index.
	var got int
	scanSt, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("auto scan matched %d, want 100; plan %+v", got, scanSt.Plan)
	}
	if len(scanSt.Plan) != 2 || scanSt.Plan[0].Indexed || !scanSt.Plan[1].Indexed {
		t.Fatalf("plan = %+v, want [full, index]", scanSt.Plan)
	}

	// Index-only scan sees only the second half.
	got = 0
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("index-only matched %d, want 50", got)
	}

	// Full-only scan sees all.
	got = 0
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceFull}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("full scan matched %d, want 100", got)
	}
}

func TestDeregistrationClosesInterval(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	sess := s.NewSession()
	batch := [][]byte{genEvent(1, "PushEvent", "spark")}
	if _, err := sess.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeregisterPSF(id); err != nil {
		t.Fatal(err)
	}
	// Post-deregistration records are not indexed.
	if st, err := sess.Ingest([][]byte{genEvent(2, "PushEvent", "spark")}); err != nil || st.Properties != 0 {
		t.Fatalf("post-deregistration ingest: %+v, %v", st, err)
	}
	sess.Close()

	var got int
	scanSt, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("auto scan after deregistration matched %d, want 2 (plan %+v)", got, scanSt.Plan)
	}
}

func TestEarlyStopTouch(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	var batch [][]byte
	for i := 0; i < 100; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	var got int
	st, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return got < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 || !st.Stopped {
		t.Fatalf("early stop: got %d, stopped %v", got, st.Stopped)
	}
}

func TestScanSpillsToDisk(t *testing.T) {
	dev := storage.NewMem()
	s := openTestStore(t, Options{Device: dev, PageBits: 12, MemPages: 2})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))

	sess := s.NewSession()
	const n = 300 // ~300 records of ~150B each >> 8KB of memory
	want := 0
	for i := 0; i < n; i++ {
		repo := "flink"
		if i%3 == 0 {
			repo = "spark"
			want++
		}
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", repo)}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if s.HeadAddress() == s.BeginAddress() {
		t.Fatal("log never spilled to disk; test is vacuous")
	}

	for _, mode := range []ScanMode{ScanAuto, ScanForceIndex, ScanIndexNoPrefetch, ScanForceFull} {
		var got int
		_, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: mode}, func(r Record) bool {
			got++
			return true
		})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if got != want {
			t.Fatalf("mode %d matched %d, want %d", mode, got, want)
		}
	}
}

func TestAdaptivePrefetchFewerIOs(t *testing.T) {
	dev := storage.NewSimSSD(storage.NewMem(), storage.DefaultSSDProfile())
	s := openTestStore(t, Options{Device: dev, PageBits: 12, MemPages: 2})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))

	sess := s.NewSession()
	for i := 0; i < 400; i++ {
		// Every record matches: maximal chain locality.
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()

	var apStats, noStats ScanStats
	var err error
	apStats, err = s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex}, func(Record) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	noStats, err = s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanIndexNoPrefetch}, func(Record) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if apStats.Matched != noStats.Matched {
		t.Fatalf("AP %d vs no-AP %d matches", apStats.Matched, noStats.Matched)
	}
	if apStats.IOs >= noStats.IOs {
		t.Fatalf("adaptive prefetching issued %d IOs, no-AP %d — expected fewer", apStats.IOs, noStats.IOs)
	}
}

func TestConcurrentIngestMultipleSessions(t *testing.T) {
	s := openTestStore(t, Options{PageBits: 14, MemPages: 4, Device: storage.NewMem()})
	id, _, _ := s.RegisterPSF(psf.Projection("type"))

	const workers = 4
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < perWorker; i += 10 {
				var batch [][]byte
				for j := 0; j < 10; j++ {
					batch = append(batch, genEvent(w*perWorker+i+j, "PushEvent", "spark"))
				}
				if _, err := sess.Ingest(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var got int
	if _, err := s.Scan(PropertyString(id, "PushEvent"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != workers*perWorker {
		t.Fatalf("matched %d, want %d", got, workers*perWorker)
	}
}

func TestBadCASModeStillCorrect(t *testing.T) {
	s := openTestStore(t, Options{BadCAS: true, PageBits: 16, MemPages: 4, Device: storage.NewMem()})
	id, _, _ := s.RegisterPSF(psf.Projection("type"))

	const workers = 4
	const perWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			var batch [][]byte
			for i := 0; i < perWorker; i++ {
				batch = append(batch, genEvent(w*perWorker+i, "PushEvent", "spark"))
			}
			if _, err := sess.Ingest(batch); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()

	var got int
	if _, err := s.Scan(PropertyString(id, "PushEvent"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != workers*perWorker {
		t.Fatalf("matched %d, want %d", got, workers*perWorker)
	}
	// Contention should have produced at least some reallocation.
	if s.Stats().InvalidatedRecs == 0 {
		t.Log("note: no CAS failures observed (timing-dependent)")
	}
}

func TestSubscription(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	sub := s.Subscribe(PropertyString(id, "spark"), 128)
	defer sub.Cancel()

	var batch [][]byte
	want := 0
	for i := 0; i < 50; i++ {
		repo := "flink"
		if i%5 == 0 {
			repo = "spark"
			want++
		}
		batch = append(batch, genEvent(i, "PushEvent", repo))
	}
	ingestAll(t, s, batch)

	got := 0
	for len(sub.Records()) > 0 {
		<-sub.Records()
		got++
	}
	if got != want {
		t.Fatalf("subscription delivered %d, want %d", got, want)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d", sub.Dropped())
	}
}

func TestSubscriptionCancelAndOverflow(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	sub := s.Subscribe(PropertyString(id, "spark"), 1)

	var batch [][]byte
	for i := 0; i < 10; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	if sub.Dropped() != 9 {
		t.Fatalf("dropped = %d, want 9 with buffer 1", sub.Dropped())
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	// Post-cancel ingestion must not panic or deliver.
	ingestAll(t, s, batch)
}

func TestMalformedRecordsStoredUnindexed(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	st := ingestAll(t, s, [][]byte{
		[]byte(`{"repo": {"name": tru}}`), // bad literal in a requested field
		genEvent(1, "PushEvent", "spark"),
	})
	if st.ParseErrors != 1 || st.Records != 2 {
		t.Fatalf("stats = %+v", st)
	}
	var got int
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("matched %d", got)
	}
}

func TestParallelFullScan(t *testing.T) {
	s := openTestStore(t, Options{PageBits: 12, MemPages: 4, Device: storage.NewMem()})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	var batch [][]byte
	want := 0
	for i := 0; i < 500; i++ {
		repo := "flink"
		if i%7 == 0 {
			repo = "spark"
			want++
		}
		batch = append(batch, genEvent(i, "PushEvent", repo))
	}
	ingestAll(t, s, batch)
	var mu sync.Mutex
	got := 0
	if _, err := s.Scan(PropertyString(id, "spark"),
		ScanOptions{Mode: ScanForceFull, Parallelism: 4},
		func(Record) bool {
			mu.Lock()
			got++
			mu.Unlock()
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel full scan matched %d, want %d", got, want)
	}
}

func TestRangeBucketPSF(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.RangeBucket("actor.id", 5))
	// actor.id = 100 + i%10 → buckets 100 and 105.
	var batch [][]byte
	for i := 0; i < 60; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	var low, high int
	s.Scan(PropertyNumber(id, 100), ScanOptions{}, func(Record) bool { low++; return true })
	s.Scan(PropertyNumber(id, 105), ScanOptions{}, func(Record) bool { high++; return true })
	if low != 30 || high != 30 {
		t.Fatalf("buckets = %d/%d, want 30/30", low, high)
	}
}

func TestScanRangeRestriction(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	sess := s.NewSession()
	var addrs []uint64
	for i := 0; i < 20; i++ {
		before := s.TailAddress()
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, before)
	}
	sess.Close()
	// Scan only records 5..14 (addresses addrs[5]..addrs[15]).
	var got int
	if _, err := s.Scan(PropertyString(id, "spark"),
		ScanOptions{From: addrs[5], To: addrs[15]},
		func(Record) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("range scan matched %d, want 10", got)
	}
}

func TestLookupUsesIndex(t *testing.T) {
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("actor.name"))
	var batch [][]byte
	for i := 0; i < 30; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	var got int
	st, err := s.Lookup(PropertyString(id, "user3"), func(Record) bool { got++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("lookup matched %d, want 3", got)
	}
	if st.FullScanBytes != 0 {
		t.Fatal("lookup must not full scan")
	}
}

func TestStatsCounters(t *testing.T) {
	s := openTestStore(t, Options{})
	s.RegisterPSF(psf.Projection("repo.name"))
	batch := [][]byte{genEvent(0, "PushEvent", "spark"), genEvent(1, "PushEvent", "flink")}
	ingestAll(t, s, batch)
	st := s.Stats()
	if st.IngestedRecords != 2 || st.IndexedProperties != 2 || st.IngestedBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LogSizeBytes == 0 || st.TableStats.UsedEntries == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValueRegionPSF(t *testing.T) {
	// A range-bucket PSF's value is computed, not a payload substring, so it
	// must flow through the value region and still be retrievable.
	s := openTestStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.RangeBucket("id", 1000))
	var batch [][]byte
	for i := 0; i < 10; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	var got int
	if _, err := s.Scan(PropertyNumber(id, 0), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("value-region PSF matched %d, want 10", got)
	}
}

func TestPhaseStatsCollected(t *testing.T) {
	s := openTestStore(t, Options{CollectPhaseStats: true})
	s.RegisterPSF(psf.Projection("repo.name"))
	sess := s.NewSession()
	var batch [][]byte
	for i := 0; i < 50; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	if _, err := sess.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	ph := sess.Phases()
	sess.Close()
	if ph.Records != 50 || ph.Total() == 0 {
		t.Fatalf("phases = %+v", ph)
	}
	if ph.Parse == 0 || ph.Memcpy == 0 {
		t.Fatalf("phase timers empty: %+v", ph)
	}
}

func TestRandomizedWorkloadCrossCheck(t *testing.T) {
	// Cross-validate index scans against brute force over random records.
	rng := rand.New(rand.NewSource(7))
	s := openTestStore(t, Options{PageBits: 13, MemPages: 3, Device: storage.NewMem()})
	idRepo, _, _ := s.RegisterPSF(psf.Projection("repo.name"))

	repos := []string{"spark", "flink", "heron", "storm", "kafka"}
	counts := map[string]int{}
	sess := s.NewSession()
	for i := 0; i < 500; i++ {
		repo := repos[rng.Intn(len(repos))]
		counts[repo]++
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", repo)}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()

	for _, repo := range repos {
		var got int
		if _, err := s.Scan(PropertyString(idRepo, repo), ScanOptions{}, func(Record) bool {
			got++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if got != counts[repo] {
			t.Fatalf("repo %s: matched %d, want %d", repo, got, counts[repo])
		}
	}
}
