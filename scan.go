package fishstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"fishstore/internal/epoch"
	"fishstore/internal/hlog"
	"fishstore/internal/metrics"
	"fishstore/internal/pagecache"
	"fishstore/internal/psf"
	"fishstore/internal/record"
	"fishstore/internal/telemetry"
	"fishstore/internal/trace"
)

// Record is one retrieved record.
type Record struct {
	// Address is the record's logical address on the log.
	Address uint64
	// Payload is the raw record bytes. The slice is owned by the caller.
	Payload []byte
}

// ScanMode selects how a subset retrieval executes (§7.1).
type ScanMode int

const (
	// ScanAuto splits the range into index scans (where the PSF's index is
	// complete) and full scans (elsewhere), with adaptive prefetching on
	// storage. This is FishStore's default behaviour.
	ScanAuto ScanMode = iota
	// ScanForceFull scans every record in the range, parsing and evaluating
	// the PSF on each (no index use).
	ScanForceFull
	// ScanForceIndex uses only the index, silently skipping unindexed
	// portions of the range.
	ScanForceIndex
	// ScanIndexNoPrefetch is ScanForceIndex with adaptive prefetching
	// disabled: every hash-chain hop on storage issues its own small
	// dependent I/Os (the "Index Scan w/o AP" baseline of Fig 16).
	ScanIndexNoPrefetch
)

func (m ScanMode) String() string {
	switch m {
	case ScanAuto:
		return "auto"
	case ScanForceFull:
		return "full"
	case ScanForceIndex:
		return "index"
	case ScanIndexNoPrefetch:
		return "index-noprefetch"
	}
	return "unknown"
}

// ScanOptions bounds and tunes a subset retrieval.
type ScanOptions struct {
	// From and To delimit the address range [From, To); zero means the
	// begin/tail of the log respectively.
	From, To uint64
	// Mode selects the execution strategy.
	Mode ScanMode
	// Parallelism > 1 splits full-scan segments page-wise across that many
	// goroutines (Appendix F). Callback invocations are serialized.
	Parallelism int
	// Priority orders scans for load shedding: while the SLO watchdog
	// reports a breach and Limits.ShedScansOnBreach is set, scans with a
	// negative priority are refused with ErrBusy. Zero (the default) and
	// positive priorities are never shed.
	Priority int
}

// Segment is one piece of a scan plan.
type Segment struct {
	From, To uint64
	Indexed  bool
}

// ScanStats reports how a scan executed.
type ScanStats struct {
	// Matched is the number of records delivered to the callback.
	Matched int64
	// Visited is the number of records examined (full-scan records plus
	// chain entries traversed).
	Visited int64
	// IndexHops is the number of hash-chain pointers followed.
	IndexHops int64
	// FullScanBytes is the log volume covered by full scans.
	FullScanBytes int64
	// IOs / ReadBytes count device reads issued by this scan.
	IOs, ReadBytes int64
	// PrefetchHits is the number of chain hops served from the adaptive
	// prefetcher's speculation buffer or the shared page cache (random
	// I/Os saved).
	PrefetchHits int64
	// PageCacheHits is the number of device-page lookups this scan served
	// from the read-through page cache (a subset of PrefetchHits on chain
	// walks, plus full-scan pages served without touching the device).
	PageCacheHits int64
	// BloomSkippedPages counts on-device pages the scan skipped entirely
	// because their per-page PSF membership summary proved the property
	// cannot occur on them.
	BloomSkippedPages int64
	// Quarantined counts device-fetched records this scan skipped because
	// their checksum failed (Options.VerifyOnRead). Such records are never
	// delivered to the callback and their chain links are not followed.
	Quarantined int64
	// Stopped is set when the callback terminated the scan early (the
	// paper's Touch early-stop signal).
	Stopped bool
	// Plan is the executed segment plan.
	Plan []Segment
}

// Scan retrieves all records with the given property within the option
// range, invoking cb for each match. Returning false from cb stops the scan
// early. Full-scan segments deliver records in ascending address order;
// index segments follow hash chains and deliver in descending order.
func (s *Store) Scan(prop Property, opts ScanOptions, cb func(r Record) bool) (ScanStats, error) {
	return s.ScanContext(nil, prop, opts, cb)
}

// ScanContext is Scan with deadline/cancellation propagation: ctx aborts a
// governor admission wait, is polled at page and chain-hop boundaries on
// every execution path (serial, parallel, fast pointer-match, paged chain
// walk), and is threaded into device reads so retry backoff waits abort too.
// A cancelled scan returns ctx's error with the stats accumulated so far;
// epochs, the page cache, and prefetch state are left consistent.
func (s *Store) ScanContext(ctx context.Context, prop Property, opts ScanOptions, cb func(r Record) bool) (ScanStats, error) {
	var st ScanStats
	if g := s.gov; g != nil {
		if err := g.admitScan(ctx, opts.Priority); err != nil {
			return st, err
		}
		defer g.releaseScan()
	}
	if err := ctxErr(ctx); err != nil {
		return st, err
	}
	from, to := s.clampRange(opts.From, opts.To)
	if from >= to {
		return st, nil
	}
	// One sampled root span per scan; nil (tracing off / unsampled) makes
	// every child below nil too.
	sp := s.tracer.StartRoot("scan")
	defer sp.End()
	psp := sp.Child("scan.plan")
	st.Plan = s.planScan(prop.PSF, from, to, opts.Mode)
	if psp != nil {
		// The Φ decision: the cost-model inputs in force when this plan was
		// chosen, pinned to the span so the trace explains the index/full
		// split the same way /debug/fishstore/scan does.
		phi, profile := costModel(s.log)
		psp.SetInt("segments", int64(len(st.Plan)))
		psp.SetUint("phi_bytes", phi)
		psp.SetFloat("bw_seq_bytes_per_sec", profile.SeqBandwidth)
		psp.SetFloat("lat_rand_seconds", profile.RandLatency.Seconds())
		psp.End()
		sp.SetInt("psf", int64(prop.PSF))
		sp.SetStr("mode", opts.Mode.String())
		sp.SetUint("from", from)
		sp.SetUint("to", to)
	}

	if s.scanLog != nil {
		start := time.Now()
		defer func() {
			s.recordScanDecision(prop.PSF, opts.Mode, from, to, &st, time.Since(start))
		}()
	}

	if met := s.metrics; met.reg.Enabled() {
		met.scans.Inc()
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			met.scanSeconds.Observe(int64(elapsed))
			met.scanMatched.Add(st.Matched)
			met.scanVisited.Add(st.Visited)
			met.scanIndexHops.Add(st.IndexHops)
			met.scanFullBytes.Add(st.FullScanBytes)
			met.scanIOReads.Add(st.IOs)
			met.scanIOReadBytes.Add(st.ReadBytes)
			for _, seg := range st.Plan {
				if seg.Indexed {
					met.scanSegIndexed.Inc()
				} else {
					met.scanSegFull.Inc()
				}
			}
			met.reg.TraceSlow("scan.slow", elapsed,
				metrics.F("matched", st.Matched),
				metrics.F("visited", st.Visited),
				metrics.F("ios", st.IOs),
				metrics.F("segments", len(st.Plan)))
		}()
	}

	def, ok := s.registry.Lookup(prop.PSF)
	if !ok {
		return st, fmt.Errorf("fishstore: unknown PSF id %d", prop.PSF)
	}
	canon := psf.CanonicalValue(prop.Value)

	if pl := s.plabels; pl != nil {
		// Scan workers spawned below inherit these goroutine labels, so CPU
		// profiles attribute the whole scan tree to (operation, mode, psf).
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("operation", "scan", "mode", opts.Mode.String(), "psf", def.Name)))
		defer pl.clear()
	}

	g := s.epoch.Acquire()
	defer g.Release()

	emit := func(r Record) bool {
		st.Matched++
		return cb(r)
	}

	for _, seg := range st.Plan {
		if err := ctxErr(ctx); err != nil {
			return st, err
		}
		var stopped bool
		var err error
		var ssp *trace.Span
		visitedBefore, iosBefore := st.Visited, st.IOs
		if seg.Indexed {
			if sp != nil {
				ssp = sp.Child("scan.segment.index")
			}
			useAP := opts.Mode != ScanIndexNoPrefetch
			var segStart time.Time
			if s.tele != nil {
				segStart = time.Now()
			}
			stopped, err = s.indexScanSegment(ctx, g, prop, canon, seg.From, seg.To, useAP, opts.Parallelism, ssp, emit, &st)
			if s.tele != nil {
				s.tele.RecordOp(telemetry.OpIndexScan, time.Since(segStart))
			}
		} else {
			if sp != nil {
				ssp = sp.Child("scan.segment.full")
			}
			stopped, err = s.fullScanSegment(ctx, g, prop, def, canon, seg.From, seg.To, opts.Parallelism, emit, &st)
		}
		if ssp != nil {
			ssp.SetUint("from", seg.From)
			ssp.SetUint("to", seg.To)
			ssp.SetInt("visited", st.Visited-visitedBefore)
			ssp.SetInt("ios", st.IOs-iosBefore)
			ssp.End()
		}
		if err != nil {
			return st, err
		}
		if stopped {
			st.Stopped = true
			break
		}
	}
	if sp != nil {
		sp.SetInt("matched", st.Matched)
		sp.SetInt("visited", st.Visited)
	}
	if tele := s.tele; tele != nil {
		// Queried-property heavy hitters answer "which predicates do reads
		// pay for" — the read-side complement of the ingest PSF attribution.
		tele.ObserveQueried(def.Name+"="+string(canon), st.Matched, st.ReadBytes)
		if lbl := s.opts.TenantLabel; lbl != nil {
			tele.ObserveTenant(lbl(), st.Visited, st.ReadBytes)
		}
	}
	return st, nil
}

// Lookup retrieves recent records for a property using only the index (a
// point-lookup over the live indexed interval, served from memory when the
// log suffix is resident). cb semantics match Scan.
func (s *Store) Lookup(prop Property, cb func(r Record) bool) (ScanStats, error) {
	return s.LookupContext(nil, prop, cb)
}

// LookupContext is Lookup with deadline/cancellation propagation (see
// ScanContext).
func (s *Store) LookupContext(ctx context.Context, prop Property, cb func(r Record) bool) (ScanStats, error) {
	ivs := s.registry.Intervals(prop.PSF)
	if len(ivs) == 0 {
		return ScanStats{}, fmt.Errorf("fishstore: PSF %d has no indexed interval", prop.PSF)
	}
	last := ivs[len(ivs)-1]
	to := last.To
	if last.Open() {
		to = 0 // tail
	}
	return s.ScanContext(ctx, prop, ScanOptions{From: last.From, To: to, Mode: ScanForceIndex}, cb)
}

// ctxErr polls a scan/ingest context at an operation-internal cancellation
// point. nil and non-cancellable contexts cost a nil check.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func (s *Store) clampRange(from, to uint64) (uint64, uint64) {
	if from < hlog.BeginAddress {
		from = hlog.BeginAddress
	}
	if t := s.truncatedUntil.Load(); from < t {
		from = t
	}
	tail := s.log.TailAddress()
	if to == 0 || to > tail {
		to = tail
	}
	return from, to
}

// planScan splits [from, to) into indexed and unindexed segments using the
// PSF's safe registration intervals.
func (s *Store) planScan(id psf.ID, from, to uint64, mode ScanMode) []Segment {
	if mode == ScanForceFull {
		return []Segment{{From: from, To: to, Indexed: false}}
	}
	ivs := s.registry.Intervals(id)
	var plan []Segment
	cur := from
	for _, iv := range ivs {
		lo, hi := iv.From, iv.To
		if hi > to {
			hi = to
		}
		if lo < cur {
			lo = cur
		}
		if lo >= hi {
			continue
		}
		if lo > cur {
			plan = append(plan, Segment{From: cur, To: lo, Indexed: false})
		}
		plan = append(plan, Segment{From: lo, To: hi, Indexed: true})
		cur = hi
	}
	if cur < to {
		plan = append(plan, Segment{From: cur, To: to, Indexed: false})
	}
	if mode == ScanForceIndex || mode == ScanIndexNoPrefetch {
		out := plan[:0]
		for _, seg := range plan {
			if seg.Indexed {
				out = append(out, seg)
			}
		}
		plan = out
	}
	return plan
}

// ---- full scan ----

// fullScanSegment walks every record in [from, to), parses the PSF's fields
// of interest, evaluates the PSF, and emits matches. Over ranges where the
// PSF's index is guaranteed complete, it switches to the pointer-matching
// fast path (identical results, no parsing, summary-driven page skips).
func (s *Store) fullScanSegment(ctx context.Context, g *epoch.Guard, prop Property, def psf.Definition, canon []byte,
	from, to uint64, parallelism int, emit func(Record) bool, st *ScanStats) (bool, error) {

	st.FullScanBytes += int64(to - from)
	if s.rangeIndexComplete(prop.PSF, from, to) {
		return s.fastFullScanSegment(ctx, g, prop, canon, from, to, parallelism, emit, st)
	}
	if tele := s.tele; tele != nil {
		// The fast pointer-match path times itself (fastFullScanSegment);
		// this covers the parse-and-evaluate slow paths below.
		start := time.Now()
		defer func() { tele.RecordOp(telemetry.OpFullScan, time.Since(start)) }()
	}
	if parallelism > 1 {
		return s.parallelFullScan(ctx, def, canon, from, to, parallelism, emit, st)
	}
	psess, err := s.pf.NewSession(def.Fields)
	if err != nil {
		return false, err
	}
	stopped := false
	err = s.visitRange(ctx, g, from, to, &st.Quarantined, &st.PageCacheHits, func(addr uint64, v record.View) bool {
		st.Visited++
		payload := v.Payload()
		parsed, perr := psess.Parse(payload)
		if perr != nil {
			return true
		}
		val := def.Evaluate(parsed)
		if !bytes.Equal(psf.CanonicalValue(val), canon) {
			return true
		}
		if !emit(Record{Address: addr, Payload: payload}) {
			stopped = true
			return false
		}
		return true
	})
	return stopped, err
}

// parallelFullScan distributes pages of [from, to) across workers
// (Appendix F). Matches are emitted through a mutex, in arbitrary order.
func (s *Store) parallelFullScan(ctx context.Context, def psf.Definition, canon []byte,
	from, to uint64, workers int, emit func(Record) bool, st *ScanStats) (bool, error) {

	pageSize := s.log.PageSize()
	firstPage := s.log.PageOf(from)
	lastPage := s.log.PageOf(to - 1)
	var nextPage atomic.Uint64
	nextPage.Store(firstPage)

	var mu sync.Mutex
	var stopped atomic.Bool
	var visited atomic.Int64
	var quarantined, cacheHits int64 // updated atomically by visitRange across workers
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wg2 := s.epoch.Acquire()
			defer wg2.Release()
			psess, err := s.pf.NewSession(def.Fields)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for !stopped.Load() {
				if err := ctxErr(ctx); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				p := nextPage.Add(1) - 1
				if p > lastPage {
					return
				}
				lo := p * pageSize
				if lo < from {
					lo = from
				}
				hi := (p + 1) * pageSize
				if hi > to {
					hi = to
				}
				err := s.visitRange(ctx, wg2, lo, hi, &quarantined, &cacheHits, func(addr uint64, v record.View) bool {
					visited.Add(1)
					payload := v.Payload()
					parsed, perr := psess.Parse(payload)
					if perr != nil {
						return true
					}
					val := def.Evaluate(parsed)
					if !bytes.Equal(psf.CanonicalValue(val), canon) {
						return true
					}
					mu.Lock()
					ok := emit(Record{Address: addr, Payload: payload})
					mu.Unlock()
					if !ok {
						stopped.Store(true)
						return false
					}
					return true
				})
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	st.Visited += visited.Load()
	st.Quarantined += atomic.LoadInt64(&quarantined)
	st.PageCacheHits += atomic.LoadInt64(&cacheHits)
	return stopped.Load(), firstErr
}

// visitRange walks all visible records in [from, to) in address order,
// reading pages from memory or storage as appropriate. from and to must be
// record boundaries. With Options.VerifyOnRead, records on device-resident
// pages are checksum-validated and quarantined on failure: skipped (counted
// into quarantined, when non-nil, with an atomic add — parallel scan workers
// share the counter) rather than delivered. In-memory pages are exempt:
// their records are sealed only at flush time. cacheHits, when non-nil,
// counts page reads served by the read-through page cache (atomic add).
func (s *Store) visitRange(ctx context.Context, g *epoch.Guard, from, to uint64, quarantined, cacheHits *int64,
	visit func(addr uint64, v record.View) bool) error {
	pageSize := s.log.PageSize()

	for addr := from; addr < to; {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		pageStart := addr &^ (pageSize - 1)
		pageEnd := pageStart + pageSize
		limit := to
		if pageEnd < limit {
			limit = pageEnd
		}
		g.Refresh()

		vfn := visit
		var words []uint64 // page words from addr onward
		if addr >= s.log.HeadAddress() {
			words = s.log.PageWordsFrom(addr)
		} else {
			// On-device data below HeadAddress is immutable, so the read
			// needs no epoch protection — and must not hold it: a pinned
			// safe epoch stalls page-frame recycling for every worker.
			n := int(pageEnd-addr) / 8
			g.Unprotect()
			w, hit, err := s.devicePageWords(ctx, addr, n)
			g.Protect()
			if err != nil {
				return fmt.Errorf("fishstore: full scan read at %d: %w", addr, err)
			}
			if hit && cacheHits != nil {
				atomic.AddInt64(cacheHits, 1)
			}
			words = w
			if s.opts.VerifyOnRead {
				vfn = func(addr uint64, v record.View) bool {
					h := v.Header()
					if reason := validateRecord(addr, h, v); reason != "" || !v.ChecksumOK() {
						if reason == "" {
							reason = "checksum mismatch"
						}
						s.quarantineRecord(addr, quarantined, "full-scan", reason)
						return true // skip the record, continue the walk
					}
					return visit(addr, v)
				}
			}
		}
		if !walkRecords(words, addr, limit, vfn) {
			return nil
		}
		addr = pageEnd
	}
	return nil
}

// devicePageWords reads the n words starting at the on-device address addr,
// through the read-through page cache when enabled (the whole page is
// filled; addr and addr+n*8 never straddle a page boundary — visitRange
// walks page by page). The caller must have dropped epoch protection. The
// second result reports whether the read was served from the cache.
func (s *Store) devicePageWords(ctx context.Context, addr uint64, n int) ([]uint64, bool, error) {
	if s.pcache == nil {
		w, err := s.log.ReadWordsFromDeviceCtx(ctx, addr, n)
		return w, false, err
	}
	pageSize := s.log.PageSize()
	page := s.log.PageOf(addr)
	pw, hit, err := s.pcache.GetOrLoad(page, func() ([]uint64, error) {
		return s.log.ReadWordsFromDeviceCtx(ctx, page*pageSize, int(pageSize/8))
	})
	if err != nil {
		return nil, false, err
	}
	off := s.log.OffsetOf(addr) / 8
	return pw[off : off+uint64(n)], hit, nil
}

// scanCache returns the page cache chain walks should read through: only
// adaptive (useAP) walks use it — the no-prefetch baseline, the verifier,
// and the chain samplers measure the raw device path.
func (s *Store) scanCache(useAP bool) *pagecache.Cache {
	if !useAP {
		return nil
	}
	return s.pcache
}

// quarantineRecord accounts for a device-fetched record whose checksum (or
// structure) failed under VerifyOnRead: it is counted, traced with its
// address so the flight recorder pins where the log is damaged, and never
// surfaced. quarantined may be nil (callers without scan stats). where names
// the read path that hit the record ("full-scan", "chain", "indirect-target")
// and is a separate trace field so hot callers never concatenate strings.
func (s *Store) quarantineRecord(addr uint64, quarantined *int64, where, reason string) {
	if quarantined != nil {
		atomic.AddInt64(quarantined, 1)
	}
	s.metrics.corruptRecords.Inc()
	s.metrics.reg.Trace("scan.quarantine",
		metrics.FUint("address", addr),
		metrics.FStr("where", where),
		metrics.FStr("reason", reason))
}

// walkRecords iterates the records laid out in words (whose first word is
// the header at baseAddr), invoking visit for each visible record starting
// below limit. Returns false if visit stopped the walk.
func walkRecords(words []uint64, baseAddr, limit uint64, visit func(addr uint64, v record.View) bool) bool {
	off := 0
	for off < len(words) {
		hw := atomic.LoadUint64(&words[off])
		h := record.UnpackHeader(hw)
		if h.SizeWords == 0 {
			return true // unwritten tail region
		}
		addr := baseAddr + uint64(off)*8
		if addr >= limit {
			return true
		}
		if !h.Filler && h.Visible && !h.Invalid {
			if off+h.SizeWords > len(words) {
				return true // torn tail record (still being written)
			}
			if !visit(addr, record.View{Words: words[off : off+h.SizeWords]}) {
				return false
			}
		}
		off += h.SizeWords
	}
	return true
}

// ---- index scan ----

// indexScanSegment retrieves matching records in [from, to) through the
// subset hash index. For sharded PSFs (Appendix F) every shard chain is
// traversed; with opts-level parallelism the shards run concurrently with
// serialized emission.
func (s *Store) indexScanSegment(ctx context.Context, g *epoch.Guard, prop Property, canon []byte,
	from, to uint64, useAP bool, parallelism int, sp *trace.Span, emit func(Record) bool, st *ScanStats) (bool, error) {

	def, _ := s.registry.Lookup(prop.PSF)
	shards := def.ShardCount()
	if shards == 1 {
		slot, ok := s.table.FindEntry(prop.hash())
		if !ok {
			return false, nil
		}
		return s.walkChain(ctx, g, slot.Address(), prop, canon, from, to, useAP, parallelism, sp, emit, st)
	}
	var heads []uint64
	for shard := 0; shard < shards; shard++ {
		h := psf.ShardHash(prop.PSF, canon, shard, shards)
		if slot, ok := s.table.FindEntry(h); ok {
			heads = append(heads, slot.Address())
		}
	}
	if parallelism > 1 && len(heads) > 1 {
		return s.parallelChainWalk(ctx, heads, prop, canon, from, to, useAP, parallelism, sp, emit, st)
	}
	for _, head := range heads {
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		stopped, err := s.walkChain(ctx, g, head, prop, canon, from, to, useAP, parallelism, sp, emit, st)
		if err != nil || stopped {
			return stopped, err
		}
	}
	return false, nil
}

// parallelChainWalk traverses shard chains concurrently (Appendix F's
// parallel index scan), serializing emission.
func (s *Store) parallelChainWalk(ctx context.Context, heads []uint64, prop Property, canon []byte,
	from, to uint64, useAP bool, parallelism int, sp *trace.Span, emit func(Record) bool, st *ScanStats) (bool, error) {
	_ = parallelism // shards already run concurrently; chains walk serially within each

	var mu sync.Mutex // guards emit and st
	var stopped atomic.Bool
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for _, head := range heads {
		wg.Add(1)
		go func(head uint64) {
			defer wg.Done()
			wg2 := s.epoch.Acquire()
			defer wg2.Release()
			var local ScanStats
			wrapped := func(r Record) bool {
				if stopped.Load() {
					return false
				}
				mu.Lock()
				ok := emit(r)
				mu.Unlock()
				if !ok {
					stopped.Store(true)
				}
				return ok
			}
			if _, err := s.walkChain(ctx, wg2, head, prop, canon, from, to, useAP, 1, sp, wrapped, &local); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			mu.Lock()
			st.Visited += local.Visited
			st.IndexHops += local.IndexHops
			st.IOs += local.IOs
			st.ReadBytes += local.ReadBytes
			st.PrefetchHits += local.PrefetchHits
			st.PageCacheHits += local.PageCacheHits
			st.BloomSkippedPages += local.BloomSkippedPages
			st.Quarantined += local.Quarantined
			mu.Unlock()
		}(head)
	}
	wg.Wait()
	return stopped.Load(), firstErr
}

// forEachChainLink follows the hash chain whose newest key pointer is at
// head, resolving each link's record from the circular buffer or from
// storage (optionally through the adaptive prefetcher), and invokes fn with
// the link's key-pointer address, record view, record base address, and
// decoded key pointer. Traversal stops when fn returns false, the chain
// terminates, or a link drops below floor (links below the floor are never
// resolved — on a truncated log their records may be gone). I/O accounting
// is added to st; when sp is a live span, each device read the chain reader
// issues becomes a scan.io child under it. Index scans and the log
// verifier's chain phase both walk chains through this one path.
func (s *Store) forEachChainLink(ctx context.Context, g *epoch.Guard, head uint64, floor uint64, useAP bool, sp *trace.Span, st *ScanStats,
	fn func(kptAddr uint64, view record.View, base uint64, kp record.KeyPointer) bool) error {
	return s.forEachChainLinkHooked(ctx, g, head, floor, useAP, sp, st, nil, fn)
}

// forEachChainLinkHooked is forEachChainLink with an optional deviceCross
// hook: it fires once, with the first link that must be resolved from the
// device, *before* that resolution happens. Returning false stops the
// generic walk there (without error), letting the caller take over the
// on-device suffix — the hot-chain cache and the paged chain walk hang off
// this point.
func (s *Store) forEachChainLinkHooked(ctx context.Context, g *epoch.Guard, head uint64, floor uint64, useAP bool, sp *trace.Span, st *ScanStats,
	deviceCross func(kptAddr uint64) bool,
	fn func(kptAddr uint64, view record.View, base uint64, kp record.KeyPointer) bool) error {

	cur := head
	var cr *chainReader
	hops := 0
	defer func() {
		if cr != nil {
			st.IOs += cr.ios
			st.ReadBytes += cr.bytesRead
			st.PrefetchHits += cr.hits
			st.PageCacheHits += cr.cacheHits
			cr.release()
		}
	}()

	for cur != 0 && cur >= floor {
		hops++
		if hops%64 == 0 {
			// The epoch-refresh cadence doubles as the cancellation-poll
			// cadence: both want "often, but not per in-memory hop".
			if err := ctxErr(ctx); err != nil {
				return err
			}
			g.Refresh()
		}
		var view record.View
		var base uint64
		if cur >= s.log.HeadAddress() {
			v, b, err := s.inMemoryRecordAt(cur)
			if err != nil {
				return err
			}
			view, base = v, b
		} else {
			if deviceCross != nil {
				ok := deviceCross(cur)
				deviceCross = nil // fires at most once
				if !ok {
					return nil
				}
			}
			if cr == nil {
				cr = newChainReader(ctx, s.log, useAP, s.scanCache(useAP), s.metrics, sp)
			}
			// Device reads target the immutable on-disk log; drop epoch
			// protection for their duration so page recycling can proceed.
			g.Unprotect()
			v, b, err := cr.record(cur)
			g.Protect()
			if err != nil {
				return fmt.Errorf("fishstore: chain read at %d: %w", cur, err)
			}
			if s.opts.VerifyOnRead {
				h := v.Header()
				reason := validateRecord(b, h, v)
				if reason == "" && !v.ChecksumOK() {
					reason = "checksum mismatch"
				}
				if reason != "" {
					// Quarantine AND terminate the walk: the prev pointer we
					// would follow lives in this corrupt record, so every
					// address it yields is untrustworthy.
					s.quarantineRecord(b, &st.Quarantined, "chain", reason)
					return nil
				}
			}
			view, base = v, b
		}
		st.IndexHops++
		st.Visited++

		ptrIndex := (int(s.offsetWordsOf(view, cur, base)) - record.HeaderWords) / record.WordsPerPointer
		kp := view.KeyPointerAt(ptrIndex)
		if !fn(cur, view, base, kp) {
			return nil
		}
		cur = kp.PrevAddress
	}
	return nil
}

// walkChain follows one hash chain from head, emitting matching records
// whose address lies in [from, to). Entries above `to` are skipped (but
// still traversed); traversal stops below `from`.
//
// At the point where the walk crosses from the in-memory prefix onto the
// device it consults the hot-chain cache: a chain probed repeatedly replays
// its memoized on-device links (skipping every non-matching hop), and a
// parallel walk with a page cache hands the suffix to the two-phase paged
// walk. A completed generic walk installs (or arms) the memoization for the
// next probe.
func (s *Store) walkChain(ctx context.Context, g *epoch.Guard, head uint64, prop Property, canon []byte,
	from, to uint64, useAP bool, par int, sp *trace.Span, emit func(Record) bool, st *ScanStats) (bool, error) {

	sig := prop.hash()
	useHot := useAP && s.hotchain != nil
	usePaged := useAP && par > 1 && s.pcache != nil && !s.opts.VerifyOnRead

	var (
		crossAddr uint64   // first on-device key pointer of the walk
		hotLinks  []uint64 // memoized links to replay instead of walking
		paged     bool     // hand the on-device suffix to the paged walk
		collected []uint64 // matching on-device links seen by this walk
		lastPrev  uint64   // PrevAddress behind the last processed link
		stopped   bool
		cbErr     error
	)
	lastPrev = head
	qBefore := st.Quarantined

	var hook func(cur uint64) bool
	if useHot || usePaged {
		hook = func(cur uint64) bool {
			crossAddr = cur
			if useHot {
				if links, ok := s.hotchain.lookup(cur, sig, from); ok {
					hotLinks = links
					return false
				}
			}
			if usePaged {
				paged = true
				return false
			}
			return true
		}
	}

	err := s.forEachChainLinkHooked(ctx, g, head, from, useAP, sp, st, hook,
		func(cur uint64, view record.View, base uint64, kp record.KeyPointer) bool {
			lastPrev = kp.PrevAddress
			h := view.Header()
			match := h.Visible && !h.Invalid && kp.PSFID == prop.PSF &&
				bytes.Equal(view.ValueBytes(kp), canon)
			if match && crossAddr != 0 {
				// Below the crossing the chain is immutable: remember the
				// matching links for memoized replay.
				collected = append(collected, cur)
			}
			if match {
				rec, merr := s.materialize(ctx, g, view, base, st)
				if errors.Is(merr, errQuarantined) {
					return true // indirect target corrupt: skip, keep walking
				}
				if merr != nil {
					cbErr = merr
					return false
				}
				// For indirect (historical) index records the range check
				// applies to the referenced data record's address.
				if rec.Address >= from && rec.Address < to {
					if !emit(rec) {
						stopped = true
						return false
					}
				}
			}
			return true
		})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return stopped, err
	}

	if hotLinks != nil {
		return s.resolveChainLinks(ctx, g, hotLinks, prop, canon, from, to, par, sp, emit, st)
	}
	if paged {
		pStopped, cands, pLast, pErr := s.pagedDeviceChainWalk(ctx, g, crossAddr, prop, canon, from, to, par, sp, emit, st)
		if pErr == nil && !pStopped && useHot && st.Quarantined == qBefore {
			s.maybeInstallHotChain(crossAddr, sig, cands, pLast, from)
		}
		return pStopped, pErr
	}

	// A generic walk that covered the whole on-device suffix (chain end, or
	// everything down to `from`) without stopping early arms or installs the
	// hot-chain memoization.
	if useHot && !stopped && crossAddr != 0 && st.Quarantined == qBefore &&
		(lastPrev == 0 || lastPrev < from) {
		s.maybeInstallHotChain(crossAddr, sig, collected, lastPrev, from)
	}
	return stopped, nil
}

// maybeInstallHotChain records a completed walk in the hot-chain cache: the
// first completed walk arms the key (placeholder), the second installs the
// memoized links. lastPrev 0 means the chain end was reached, so the entry
// covers any From; otherwise it only covers From >= the walk's floor.
func (s *Store) maybeInstallHotChain(crossAddr, sig uint64, links []uint64, lastPrev, from uint64) {
	if !s.hotchain.shouldInstall(crossAddr, sig) {
		return
	}
	floorCovered := from
	if lastPrev == 0 {
		floorCovered = 0
	}
	// Copy: links aliases a walk-local slice that may keep growing.
	installed := make([]uint64, len(links))
	copy(installed, links)
	s.hotchain.install(crossAddr, sig, installed, floorCovered)
}

// inMemoryRecordAt resolves the record containing the key pointer at
// kptAddr from the circular buffer.
func (s *Store) inMemoryRecordAt(kptAddr uint64) (record.View, uint64, error) {
	kw := s.log.WordsAt(kptAddr, 1)
	a := atomic.LoadUint64(&kw[0])
	offWords := int(a >> 50)
	base := kptAddr - uint64(offWords)*8
	hw := s.log.WordsAt(base, 1)
	h := record.UnpackHeader(atomic.LoadUint64(&hw[0]))
	if h.SizeWords == 0 {
		return record.View{}, 0, fmt.Errorf("fishstore: empty header at %d", base)
	}
	return record.View{Words: s.log.WordsAt(base, h.SizeWords)}, base, nil
}

// offsetWordsOf recovers the key pointer's offset within its record.
func (s *Store) offsetWordsOf(v record.View, kptAddr, base uint64) uint64 {
	return (kptAddr - base) / 8
}

// materialize turns a matched view into a Record, resolving historical
// indirection (Appendix A) if needed.
func (s *Store) materialize(ctx context.Context, g *epoch.Guard, view record.View, base uint64, st *ScanStats) (Record, error) {
	h := view.Header()
	if !h.Indirect {
		return Record{Address: base, Payload: view.Payload()}, nil
	}
	// Indirect record: payload is the 8-byte address of the data record.
	pl := view.Payload()
	if len(pl) != 8 {
		return Record{}, errBadIndirect(base)
	}
	target := binary.LittleEndian.Uint64(pl)
	var tv record.View
	if target >= s.log.HeadAddress() {
		hw := s.log.WordsAt(target, 1)
		th := record.UnpackHeader(atomic.LoadUint64(&hw[0]))
		tv = record.View{Words: s.log.WordsAt(target, th.SizeWords)}
	} else {
		// The target is below HeadAddress, hence immutable on device; do
		// not hold the epoch across the reads.
		g.Unprotect()
		hw, err := s.log.ReadWordsFromDeviceCtx(ctx, target, 1)
		g.Protect()
		if err != nil {
			return Record{}, err
		}
		th := record.UnpackHeader(hw[0])
		if s.opts.VerifyOnRead && th.SizeWords == 0 {
			s.quarantineRecord(target, &st.Quarantined, "indirect-target", "empty header")
			return Record{}, errQuarantined
		}
		g.Unprotect()
		words, err := s.log.ReadWordsFromDeviceCtx(ctx, target, th.SizeWords)
		g.Protect()
		if err != nil {
			return Record{}, err
		}
		st.IOs += 2
		st.ReadBytes += int64(8 + th.SizeWords*8)
		tv = record.View{Words: words}
		if s.opts.VerifyOnRead {
			reason := validateRecord(target, tv.Header(), tv)
			if reason == "" && !tv.ChecksumOK() {
				reason = "checksum mismatch"
			}
			if reason != "" {
				s.quarantineRecord(target, &st.Quarantined, "indirect-target", reason)
				return Record{}, errQuarantined
			}
		}
	}
	return Record{Address: target, Payload: tv.Payload()}, nil
}

// errBadIndirect is the address of an indirect record whose payload is not
// the expected 8-byte target address. A typed error (like errEmptyHeader)
// keeps the construction allocation-free on the audited chain-walk path.
type errBadIndirect uint64

func (e errBadIndirect) Error() string {
	return "fishstore: indirect record payload is not an 8-byte address"
}

// errQuarantined is the internal sentinel materialize returns when
// VerifyOnRead rejected an indirect record's device-resident target; the
// chain walk skips the record instead of aborting the scan.
var errQuarantined = errors.New("fishstore: record quarantined")
