package fishstore

import (
	"fmt"

	"fishstore/internal/metrics"
	"fishstore/internal/telemetry"
)

// This file is the store-level glue for the workload-attribution layer
// (internal/telemetry): collector and SLO-watchdog lifecycle, the
// /debug/fishstore/workload and /debug/fishstore/health endpoints, the
// fishstore_workload_* / fishstore_slo_* Prometheus surface, and the
// slo.burn trace events the watchdog feeds the flight recorder.

// wireWorkloadTelemetry builds the collector and watchdog per Options and
// mounts the debug endpoints. Called from Open and Recover after the
// metrics registry is resolved; the health endpoint is registered even with
// telemetry disabled (it still folds in the degraded state).
func (s *Store) wireWorkloadTelemetry() {
	reg := s.metrics.reg
	if !s.opts.DisableTelemetry {
		s.tele = telemetry.New(telemetry.Config{})
		if s.opts.SLO != nil {
			s.watchdog = telemetry.NewWatchdog(s.tele, *s.opts.SLO, s.sloTick)
		}
	}
	if s.tele != nil {
		reg.RegisterDebug("workload", func() any { return s.WorkloadSnapshot(10) })
	}
	reg.RegisterDebug("health", func() any { return s.Health() })
	s.registerWorkloadGauges()
	// Start ticking only after the endpoints exist: the first tick may
	// already trace.
	s.watchdog.Start()
}

// registerWorkloadGauges exports the per-op latency quantiles and the SLO
// burn rates as Prometheus gauges (snapshot-time evaluation; first store
// wins on a shared registry, like every other GaugeFunc here).
func (s *Store) registerWorkloadGauges() {
	reg := s.metrics.reg
	if !reg.Enabled() || s.tele == nil {
		return
	}
	ops := []telemetry.Op{
		telemetry.OpIngestBatch, telemetry.OpIndexScan,
		telemetry.OpFullScan, telemetry.OpCheckpoint,
	}
	for _, op := range ops {
		op := op
		sk := s.tele.Op(op)
		reg.GaugeFunc("fishstore_workload_ops_total",
			"Operations recorded by the workload telemetry layer.",
			func() float64 { return float64(sk.Count()) },
			metrics.L("op", op.String()))
		for _, q := range []struct {
			q     float64
			label string
		}{{0.50, "0.50"}, {0.95, "0.95"}, {0.99, "0.99"}} {
			q := q
			reg.GaugeFunc("fishstore_workload_latency_seconds",
				"Interpolated per-operation latency quantile from the mergeable "+
					"power-of-two sketch.",
				func() float64 { return sk.Quantile(q.q) / 1e9 },
				metrics.L("op", op.String()), metrics.L("quantile", q.label))
		}
	}
	for _, obj := range s.watchdog.Objectives() {
		name := obj.Name
		reg.GaugeFunc("fishstore_slo_burn",
			"SLO burn rate per objective: the window fraction of operations "+
				"over target divided by the error budget (1 = budget spent "+
				"exactly as fast as it accrues).",
			func() float64 { return s.watchdog.Burn(name) },
			metrics.L("slo", name))
	}
	reg.GaugeFunc("fishstore_slo_health",
		"Health verdict: 0 ok, 1 degraded, 2 breach (folds in the sticky "+
			"degraded read-only state).",
		func() float64 {
			switch s.Health().Status {
			case telemetry.StatusBreach:
				return 2
			case telemetry.StatusDegraded:
				return 1
			}
			return 0
		})
}

// sloTick is the watchdog's per-evaluation callback: it feeds burning
// objectives into the trace pipeline (flight recorder + TraceSink), so a
// crash or a support bundle carries the burn timeline.
func (s *Store) sloTick(r telemetry.Report) {
	if g := s.gov; g != nil {
		// The governor sheds negative-priority scans while this is true
		// (Limits.ShedScansOnBreach).
		g.noteHealth(r.Status == telemetry.StatusBreach)
	}
	if r.Status == telemetry.StatusOK {
		return
	}
	for _, b := range r.SLOs {
		if b.Burn < 1 {
			continue
		}
		s.metrics.reg.Trace("slo.burn",
			metrics.F("slo", b.Name),
			metrics.F("state", b.State),
			metrics.F("burn", fmt.Sprintf("%.2f", b.Burn)),
			metrics.F("window_ops", b.WindowOps),
			metrics.F("window_breaches", b.WindowBreaches))
	}
}

// WorkloadSnapshot returns the live workload-attribution view: per-op
// latency quantiles plus the top-N heavy hitters per dimension (PSFs,
// sampled properties, tenants, queried properties). Empty when telemetry is
// disabled.
func (s *Store) WorkloadSnapshot(topN int) *telemetry.Snapshot {
	if s.tele == nil {
		return nil
	}
	return s.tele.Snapshot(topN)
}

// Telemetry returns the store's workload collector (nil when disabled) so a
// scatter-gather facade can Merge per-shard collectors into a cluster view.
func (s *Store) Telemetry() *telemetry.Collector { return s.tele }

// Health is the machine-readable verdict served at /debug/fishstore/health.
type Health struct {
	// Status is ok, degraded, or breach: the worse of the SLO watchdog's
	// verdict and the store's sticky degraded read-only state (which is
	// always a breach — the store can no longer persist writes).
	Status string `json:"status"`
	// Degraded mirrors Store.Degraded: a permanent I/O failure has flipped
	// the store read-only.
	Degraded      bool   `json:"degraded"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	// LogFull mirrors Store.LogFull: the device is out of space and ingestion
	// is refused until space is reclaimed (a recoverable state, reported as
	// degraded rather than breach).
	LogFull      bool   `json:"log_full,omitempty"`
	LogFullCause string `json:"log_full_cause,omitempty"`
	// SLO carries the watchdog's latest burn-rate report (nil when no SLO
	// targets are configured).
	SLO *telemetry.Report `json:"slo,omitempty"`
}

// Health computes the current health verdict.
func (s *Store) Health() Health {
	h := Health{Status: telemetry.StatusOK}
	if deg, cause := s.Degraded(); deg {
		h.Status = telemetry.StatusBreach
		h.Degraded = true
		h.DegradedCause = cause
	}
	if full, cause := s.LogFull(); full {
		h.LogFull = true
		h.LogFullCause = cause
		if h.Status == telemetry.StatusOK {
			h.Status = telemetry.StatusDegraded
		}
	}
	if s.watchdog != nil {
		r := s.watchdog.Report()
		h.SLO = &r
		if h.Status != telemetry.StatusBreach {
			switch r.Status {
			case telemetry.StatusBreach:
				h.Status = telemetry.StatusBreach
			case telemetry.StatusDegraded:
				h.Status = telemetry.StatusDegraded
			}
		}
	}
	return h
}
