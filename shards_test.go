package fishstore

import (
	"sync"
	"testing"

	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// TestShardedPSFCorrectness: a sharded PSF must return exactly the same
// result set as its unsharded twin (Appendix F).
func TestShardedPSFCorrectness(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 13, MemPages: 3})
	plain := psf.Projection("repo.name")
	sharded := psf.Projection("repo.name")
	sharded.Name = "proj-sharded"
	sharded.Shards = 4
	idPlain, _, err := s.RegisterPSF(plain)
	if err != nil {
		t.Fatal(err)
	}
	idSharded, _, err := s.RegisterPSF(sharded)
	if err != nil {
		t.Fatal(err)
	}

	var batch [][]byte
	want := 0
	for i := 0; i < 400; i++ {
		repo := "flink"
		if i%3 == 0 {
			repo = "spark"
			want++
		}
		batch = append(batch, genEvent(i, "PushEvent", repo))
	}
	ingestAll(t, s, batch)

	count := func(id psf.ID) (int, map[uint64]bool) {
		seen := map[uint64]bool{}
		n := 0
		if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex},
			func(r Record) bool {
				if seen[r.Address] {
					t.Fatalf("record %d emitted twice", r.Address)
				}
				seen[r.Address] = true
				n++
				return true
			}); err != nil {
			t.Fatal(err)
		}
		return n, seen
	}
	nPlain, setPlain := count(idPlain)
	nSharded, setSharded := count(idSharded)
	if nPlain != want || nSharded != want {
		t.Fatalf("plain %d, sharded %d, want %d", nPlain, nSharded, want)
	}
	for addr := range setPlain {
		if !setSharded[addr] {
			t.Fatalf("record %d missing from sharded result", addr)
		}
	}
}

// TestShardedChainsAreShorter: with k shards the longest chain should be
// roughly 1/k of the records (enabling parallel traversal).
func TestShardedChainsAreShorter(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 14, MemPages: 3})
	def := psf.MustPredicate("all", `id >= 0`)
	def.Shards = 4
	id, _, err := s.RegisterPSF(def)
	if err != nil {
		t.Fatal(err)
	}
	var batch [][]byte
	const n = 400
	for i := 0; i < n; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)

	// All records findable.
	var got int
	if _, err := s.Scan(PropertyBool(id, true), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("matched %d, want %d", got, n)
	}
	// ChainGapProfile follows only the unsharded signature, which for a
	// sharded PSF has no chain; the per-shard distribution is what matters:
	// each shard receives n/4 records by round-robin.
	// (Indirectly verified: a scan visits exactly n chain entries total.)
	st, err := s.Scan(PropertyBool(id, true), ScanOptions{Mode: ScanForceIndex},
		func(Record) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexHops != int64(n) {
		t.Fatalf("hops %d, want %d", st.IndexHops, n)
	}
}

// TestShardedPSFEarlyStop: Touch semantics hold across shard boundaries.
func TestShardedPSFEarlyStop(t *testing.T) {
	s := openTestStore(t, Options{})
	def := psf.Projection("repo.name")
	def.Shards = 3
	id, _, _ := s.RegisterPSF(def)
	var batch [][]byte
	for i := 0; i < 90; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	var got int
	st, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return got < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 || !st.Stopped {
		t.Fatalf("early stop across shards: got %d stopped %v", got, st.Stopped)
	}
}

// TestShardedConcurrentIngest: round-robin shard assignment is per-session;
// concurrent sessions must still produce a complete index.
func TestShardedConcurrentIngest(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 14, MemPages: 4})
	def := psf.Projection("type")
	def.Shards = 8
	id, _, _ := s.RegisterPSF(def)
	var wg sync.WaitGroup
	const workers = 4
	const per = 150
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < per; i++ {
				if _, err := sess.Ingest([][]byte{genEvent(w*per+i, "PushEvent", "spark")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var got int
	if _, err := s.Scan(PropertyString(id, "PushEvent"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != workers*per {
		t.Fatalf("matched %d, want %d", got, workers*per)
	}
}

// TestShardValidation rejects out-of-range shard counts.
func TestShardValidation(t *testing.T) {
	s := openTestStore(t, Options{})
	def := psf.Projection("x")
	def.Shards = 100
	if _, _, err := s.RegisterPSF(def); err == nil {
		t.Fatal("accepted 100 shards")
	}
}

// TestShardedPSFSurvivesRecovery: the address-derived shard assignment must
// be recomputable during checkpoint replay.
func TestShardedPSFSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := dir + "/log.dat"
	dev, err := storage.OpenFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Device: dev, PageBits: 12, MemPages: 4, TableBuckets: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	def := psf.Projection("repo.name")
	def.Shards = 4
	id, _, err := s.RegisterPSF(def)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 60; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := dir + "/ckpt"
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint records exercise the replay path.
	for i := 60; i < 100; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	dev2, err := storage.OpenFileExisting(logPath)
	if err != nil {
		t.Fatal(err)
	}
	s2, info, err := Recover(ckpt, RecoverOptions{Options: Options{Device: dev2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.ReplayedRecords != 40 {
		t.Fatalf("replayed %d, want 40", info.ReplayedRecords)
	}
	var got int
	if _, err := s2.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex},
		func(Record) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("sharded scan after recovery matched %d, want 100", got)
	}
}

// TestParallelShardScan: Parallelism > 1 traverses shard chains
// concurrently with the same result set.
func TestParallelShardScan(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 13, MemPages: 3})
	def := psf.Projection("repo.name")
	def.Shards = 4
	id, _, _ := s.RegisterPSF(def)
	var batch [][]byte
	want := 0
	for i := 0; i < 300; i++ {
		repo := "flink"
		if i%2 == 0 {
			repo = "spark"
			want++
		}
		batch = append(batch, genEvent(i, "PushEvent", repo))
	}
	ingestAll(t, s, batch)

	seen := map[uint64]bool{}
	var mu sync.Mutex
	st, err := s.Scan(PropertyString(id, "spark"),
		ScanOptions{Mode: ScanForceIndex, Parallelism: 4},
		func(r Record) bool {
			mu.Lock()
			defer mu.Unlock()
			if seen[r.Address] {
				t.Errorf("duplicate record %d", r.Address)
			}
			seen[r.Address] = true
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != want || st.Matched != int64(want) {
		t.Fatalf("parallel shard scan matched %d (stats %d), want %d", len(seen), st.Matched, want)
	}

	// Early stop works in parallel mode.
	var got int
	st, err = s.Scan(PropertyString(id, "spark"),
		ScanOptions{Mode: ScanForceIndex, Parallelism: 4},
		func(Record) bool {
			mu.Lock()
			got++
			n := got
			mu.Unlock()
			return n < 5
		})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stopped || got < 5 {
		t.Fatalf("parallel early stop: got %d stopped %v", got, st.Stopped)
	}
}
