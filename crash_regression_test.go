package fishstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fishstore/internal/hashtable"
	"fishstore/internal/hlog"
	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// TestCheckpointFsyncsEveryArtifact pins the durability protocol: the table
// tmp file, the manifest tmp file, and the checkpoint directory itself must
// all be fsynced before Checkpoint returns. Before the fix none of them were,
// so a machine crash after Checkpoint could lose or tear the artifacts the
// manifest claims are durable.
func TestCheckpointFsyncsEveryArtifact(t *testing.T) {
	var mu sync.Mutex
	var synced []string
	orig := fsyncFile
	fsyncFile = func(f *os.File) error {
		mu.Lock()
		synced = append(synced, f.Name())
		mu.Unlock()
		return orig(f)
	}
	defer func() { fsyncFile = orig }()

	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 12, MemPages: 4})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 20; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()

	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.Checkpoint(ckptDir); err != nil {
		t.Fatal(err)
	}

	want := []string{
		filepath.Join(ckptDir, tableFile) + ".tmp",
		filepath.Join(ckptDir, manifestFile) + ".tmp",
		ckptDir,
	}
	mu.Lock()
	defer mu.Unlock()
	for _, w := range want {
		found := false
		for _, got := range synced {
			if got == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("checkpoint did not fsync %s (synced: %v)", w, synced)
		}
	}
}

// TestCheckpointSurfacesSyncFailure: the manifest claims the log is durable
// below its tail, so a failed device sync must fail the checkpoint rather
// than publish that claim.
func TestCheckpointSurfacesSyncFailure(t *testing.T) {
	fd := storage.NewFaultDevice(storage.NewMem(), storage.FaultConfig{Seed: 7, FailSyncProb: 1})
	s := openTestStore(t, Options{Device: fd, PageBits: 12, MemPages: 4})
	sess := s.NewSession()
	if _, err := sess.Ingest([][]byte{genEvent(1, "PushEvent", "spark")}); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	err := s.Checkpoint(filepath.Join(t.TempDir(), "ckpt"))
	if err == nil {
		t.Fatal("checkpoint succeeded despite the device refusing to sync")
	}
	if !errors.Is(err, storage.ErrSyncFailed) {
		t.Fatalf("checkpoint error = %v, want wrapped ErrSyncFailed", err)
	}
	if !strings.Contains(err.Error(), "checkpoint log sync") {
		t.Fatalf("checkpoint error %q does not name the log sync step", err)
	}
}

// TestReplaySuffixPropagatesTableFull: replay used to drop table.FindOrCreate
// errors on the floor, silently recovering a store whose index was missing
// chains. The error must propagate out of Recover's replay step.
func TestReplaySuffixPropagatesTableFull(t *testing.T) {
	s := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 12, MemPages: 4})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 32; i++ { // 32 distinct properties
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", fmt.Sprintf("repo-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()

	// One bucket plus one overflow bucket holds at most 14 distinct
	// properties; replaying 32 must exhaust it.
	s.table = hashtable.New(1, 1)
	g := s.epoch.Acquire()
	defer g.Release()
	_, _, err := s.replaySuffix(g, uint64(hlog.BeginAddress), s.log.TailAddress())
	if err == nil {
		t.Fatal("replaySuffix swallowed the table-full error")
	}
	if !errors.Is(err, hashtable.ErrTableFull) {
		t.Fatalf("replaySuffix error = %v, want wrapped ErrTableFull", err)
	}
}

// TestRecoverRestoresIngestedBytes: the replayed suffix's bytes must be added
// back to the ingested-bytes counter, exactly as replayed records already
// were. Before the fix a recovered store under-reported IngestedBytes by the
// whole suffix.
func TestRecoverRestoresIngestedBytes(t *testing.T) {
	mem := storage.NewMem()
	opts := Options{Device: mem, PageBits: 12, MemPages: 4, TableBuckets: 1 << 8}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 100; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.Checkpoint(ckptDir); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	before := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info, err := Recover(ckptDir, RecoverOptions{Options: Options{Device: mem, TableBuckets: 1 << 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.ReplayedRecords != 50 {
		t.Fatalf("replayed %d, want 50", info.ReplayedRecords)
	}
	after := s2.Stats()
	if after.IngestedRecords != before.IngestedRecords {
		t.Fatalf("IngestedRecords after recovery = %d, want %d", after.IngestedRecords, before.IngestedRecords)
	}
	if after.IngestedBytes != before.IngestedBytes {
		t.Fatalf("IngestedBytes after recovery = %d, want %d", after.IngestedBytes, before.IngestedBytes)
	}
}

// TestRecoverSurfacesReadErrors: probeDurableEnd used to treat every read
// error as end-of-log, so a flaky device silently truncated the recovered
// store at the checkpoint tail. Real read errors must abort recovery.
func TestRecoverSurfacesReadErrors(t *testing.T) {
	mem := storage.NewMem()
	opts := Options{Device: mem, PageBits: 12, MemPages: 4, TableBuckets: 1 << 8}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 40; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.Checkpoint(ckptDir); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 60; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fd := storage.NewFaultDevice(mem, storage.FaultConfig{Seed: 3})
	fd.FailNextRead(storage.ErrShortRead)
	if _, _, err := Recover(ckptDir, RecoverOptions{Options: Options{Device: fd, TableBuckets: 1 << 8}}); err == nil {
		t.Fatal("recovery silently truncated the log at a device read error")
	} else if !errors.Is(err, storage.ErrShortRead) {
		t.Fatalf("recovery error = %v, want the injected read error", err)
	}

	// Sanity: the same device recovers fine once the fault is gone.
	s2, info, err := Recover(ckptDir, RecoverOptions{Options: Options{Device: fd, TableBuckets: 1 << 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.ReplayedRecords != 20 {
		t.Fatalf("replayed %d, want 20", info.ReplayedRecords)
	}
}

// TestRecoverTornTailPage is the checkpoint -> crash -> recover round trip
// under the fault device: a power cut after the checkpoint loses the
// unflushed tail, and recovery must come back with every checkpointed record,
// a clean fsck, and a live store.
func TestRecoverTornTailPage(t *testing.T) {
	for _, tc := range []struct {
		name  string
		crash func(fd *storage.FaultDevice, sess *Session)
	}{
		{"cut-before-tail-flush", func(fd *storage.FaultDevice, sess *Session) {
			// Lose the final tail flush cleanly: everything in sealed pages
			// survives, the partial tail page does not.
			for i := 100; i < 150; i++ {
				if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
					break
				}
			}
			fd.CutNow()
		}},
		{"cut-mid-flush", func(fd *storage.FaultDevice, sess *Session) {
			// Tear an actual in-flight page flush.
			fd.ArmPowerCut(1)
			for i := 100; i < 150; i++ {
				if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
					break
				}
			}
			if !fd.IsCut() {
				fd.CutNow()
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := storage.NewMem()
			fd := storage.NewFaultDevice(mem, storage.FaultConfig{Seed: 11})
			s, err := Open(Options{Device: fd, PageBits: 12, MemPages: 4, TableBuckets: 1 << 8})
			if err != nil {
				t.Fatal(err)
			}
			id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
			if err != nil {
				t.Fatal(err)
			}
			sess := s.NewSession()
			for i := 0; i < 100; i++ {
				if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
					t.Fatal(err)
				}
			}
			ckptDir := filepath.Join(t.TempDir(), "ckpt")
			if err := s.Checkpoint(ckptDir); err != nil {
				t.Fatal(err)
			}

			tc.crash(fd, sess)
			sess.Close()
			_ = s.Close() // the tail flush fails: the power is out

			// Recover against the surviving image.
			s2, info, err := Recover(ckptDir, RecoverOptions{Options: Options{Device: mem, TableBuckets: 1 << 8}})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if info.CheckpointTail == 0 || info.RecoveredTail < info.CheckpointTail {
				t.Fatalf("bad recovery window: %+v", info)
			}

			rep, err := s2.VerifyLog(VerifyOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("fsck after crash: %s", rep.Corruption)
			}

			var got int
			if _, err := s2.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
				got++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			// All 100 checkpointed records must survive; the suffix may be
			// partially lost but never partially indexed beyond what was
			// replayed (the one torn-tail record may fail the value match).
			if got < 100 {
				t.Fatalf("only %d checkpointed records survived the crash, want >= 100", got)
			}
			if max := 100 + int(info.ReplayedRecords); got > max {
				t.Fatalf("scan found %d records, more than checkpoint+replay can explain (%d)", got, max)
			}

			// The recovered store is live.
			sess2 := s2.NewSession()
			if _, err := sess2.Ingest([][]byte{genEvent(999, "PushEvent", "spark")}); err != nil {
				t.Fatal(err)
			}
			sess2.Close()
		})
	}
}

// TestVerifyDeviceDetectsCorruption: the fsck walker must flag a deliberately
// smashed key-pointer word and report the damaged record's address.
func TestVerifyDeviceDetectsCorruption(t *testing.T) {
	mem := storage.NewMem()
	s, err := Open(Options{Device: mem, PageBits: 12, MemPages: 4, TableBuckets: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 50; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	clean, err := VerifyDevice(mem, 12, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.OK() {
		t.Fatalf("clean log reported corrupt: %s", clean.Corruption)
	}
	if clean.Records != 50 {
		t.Fatalf("verifier walked %d records, want 50", clean.Records)
	}

	// Smash the first record's first key-pointer word.
	junk := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	//lint:ignore sealcover deliberate corruption: the test smashes sealed bytes to prove the verifier quarantines the page
	if _, err := mem.WriteAt(junk, int64(hlog.BeginAddress)+8); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDevice(mem, 12, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verifier accepted a log with a smashed key pointer")
	}
	if rep.Corruption.Address != uint64(hlog.BeginAddress) {
		t.Fatalf("corruption reported at %d, want %d", rep.Corruption.Address, uint64(hlog.BeginAddress))
	}
}
