package fishstore

import (
	"bufio"
	"fmt"
	"io"
)

// IngestReader streams newline-delimited records (e.g. NDJSON or CSV rows)
// from r into the store in batches of batchSize, the shape in which
// FishStore receives data from collection agents (§4.1 "receives batches
// of raw records"). Empty lines are skipped. It returns aggregate stats.
//
// maxRecordBytes bounds a single record (0 means 16MB).
func (sess *Session) IngestReader(r io.Reader, batchSize int, maxRecordBytes int) (IngestStats, error) {
	if batchSize < 1 {
		batchSize = 256
	}
	if maxRecordBytes <= 0 {
		maxRecordBytes = 16 << 20
	}
	sc := bufio.NewScanner(r)
	initial := 64 << 10
	if initial > maxRecordBytes {
		initial = maxRecordBytes
	}
	sc.Buffer(make([]byte, initial), maxRecordBytes)

	var agg IngestStats
	batch := make([][]byte, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		st, err := sess.Ingest(batch)
		agg.Records += st.Records
		agg.Bytes += st.Bytes
		agg.Properties += st.Properties
		agg.ParseErrors += st.ParseErrors
		agg.Reallocs += st.Reallocs
		batch = batch[:0]
		return err
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Ingest retains no reference past the call, but lines share the
		// scanner's buffer across Scan calls, so copy per record.
		batch = append(batch, append([]byte(nil), line...))
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return agg, err
			}
		}
	}
	if err := flush(); err != nil {
		return agg, err
	}
	if err := sc.Err(); err != nil {
		return agg, fmt.Errorf("fishstore: reading input: %w", err)
	}
	return agg, nil
}
