package fishstore

import (
	"sync/atomic"
	"testing"

	"fishstore/internal/epoch"
	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// epochProbe wraps a device and asserts, on every read, that the safe epoch
// can advance past a freshly bumped epoch — which is only possible when no
// worker (in these single-threaded tests: the reader issuing this very I/O)
// is sitting in a protected region. A scan that held protection across
// device I/O would pin the safe epoch and trip the probe deterministically.
type epochProbe struct {
	storage.Device
	m          *epoch.Manager
	reads      atomic.Int64
	violations atomic.Int64
}

func (d *epochProbe) ReadAt(p []byte, off int64) (int, error) {
	if m := d.m; m != nil {
		before := m.Bump()
		if m.SafeEpoch() < before {
			d.violations.Add(1)
		}
		d.reads.Add(1)
	}
	return d.Device.ReadAt(p, off)
}

// TestDeviceReadsDoNotPinEpoch is the regression test for the epochguard
// findings in visitRange, walkChain's chain reader, materialize and
// ChainGapProfile: device reads must run with epoch protection dropped.
func TestDeviceReadsDoNotPinEpoch(t *testing.T) {
	dev := &epochProbe{Device: storage.NewMem()}
	s := openTestStore(t, Options{Device: dev, PageBits: 12, MemPages: 2})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 200; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	// Arm the probe only now: ingestion-time flushes and recovery reads are
	// not under test.
	dev.m = s.epoch

	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceFull},
		func(Record) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex},
		func(Record) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ChainGapProfile(PropertyString(id, "spark"), 0); err != nil {
		t.Fatal(err)
	}

	if dev.reads.Load() == 0 {
		t.Fatal("probe saw no device reads; the store never evicted and the test is vacuous")
	}
	if v := dev.violations.Load(); v != 0 {
		t.Fatalf("%d device read(s) issued while the reader pinned the safe epoch", v)
	}
}
