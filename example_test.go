package fishstore_test

import (
	"fmt"

	"fishstore"
	"fishstore/internal/psf"
)

// The basic flow: open, register PSFs, ingest, retrieve.
func Example() {
	store, _ := fishstore.Open(fishstore.Options{})
	defer store.Close()

	repo, _, _ := store.RegisterPSF(psf.Projection("repo.name"))

	sess := store.NewSession()
	sess.Ingest([][]byte{
		[]byte(`{"id": 1, "repo": {"name": "spark"}}`),
		[]byte(`{"id": 2, "repo": {"name": "flink"}}`),
		[]byte(`{"id": 3, "repo": {"name": "spark"}}`),
	})
	sess.Close()

	var n int
	store.Scan(fishstore.PropertyString(repo, "spark"), fishstore.ScanOptions{},
		func(r fishstore.Record) bool { n++; return true })
	fmt.Println("spark records:", n)
	// Output: spark records: 2
}

// Predicate PSFs index only the records a boolean expression selects.
func ExampleStore_RegisterPSF_predicate() {
	store, _ := fishstore.Open(fishstore.Options{})
	defer store.Close()

	//lint:ignore errflow documentation example elides error handling for brevity
	def, _ := psf.Predicate("hot", `cpu > 90`)
	id, _, _ := store.RegisterPSF(def)

	sess := store.NewSession()
	stats, _ := sess.Ingest([][]byte{
		[]byte(`{"machine": "m0", "cpu": 95.5}`),
		[]byte(`{"machine": "m1", "cpu": 12.0}`),
	})
	sess.Close()

	fmt.Println("index entries written:", stats.Properties)
	var hot int
	store.Scan(fishstore.PropertyBool(id, true), fishstore.ScanOptions{},
		func(fishstore.Record) bool { hot++; return true })
	fmt.Println("hot machines:", hot)
	// Output:
	// index entries written: 1
	// hot machines: 1
}

// Range-bucket PSFs support predefined range queries with post-filtering
// (Appendix B).
func ExampleStore_ScanRange() {
	store, _ := fishstore.Open(fishstore.Options{})
	defer store.Close()

	id, _, _ := store.RegisterPSF(psf.RangeBucket("cpu", 25))

	sess := store.NewSession()
	for _, cpu := range []float64{5, 30, 55, 80, 99} {
		sess.Ingest([][]byte{[]byte(fmt.Sprintf(`{"cpu": %g}`, cpu))})
	}
	sess.Close()

	var n int
	store.ScanRange(id, 50, 100, fishstore.ScanOptions{},
		func(fishstore.Record) bool { n++; return true })
	fmt.Println("cpu in [50,100):", n)
	// Output: cpu in [50,100): 3
}

// Subscriptions stream matching records to consumers as they are ingested.
func ExampleStore_Subscribe() {
	store, _ := fishstore.Open(fishstore.Options{})
	defer store.Close()

	id, _, _ := store.RegisterPSF(psf.Projection("level"))
	sub := store.Subscribe(fishstore.PropertyString(id, "error"), 16)

	sess := store.NewSession()
	sess.Ingest([][]byte{
		[]byte(`{"level": "info", "msg": "a"}`),
		[]byte(`{"level": "error", "msg": "b"}`),
		[]byte(`{"level": "error", "msg": "c"}`),
	})
	sess.Close()
	sub.Cancel()

	var n int
	for range sub.Records() {
		n++
	}
	fmt.Println("errors streamed:", n)
	// Output: errors streamed: 2
}

// Early stop (the paper's Touch signal): return false from the callback.
func ExampleStore_Scan_earlyStop() {
	store, _ := fishstore.Open(fishstore.Options{})
	defer store.Close()

	id, _, _ := store.RegisterPSF(psf.Projection("k"))
	sess := store.NewSession()
	for i := 0; i < 100; i++ {
		sess.Ingest([][]byte{[]byte(`{"k": "v"}`)})
	}
	sess.Close()

	var n int
	st, _ := store.Scan(fishstore.PropertyString(id, "v"), fishstore.ScanOptions{},
		func(fishstore.Record) bool {
			n++
			return n < 3 // stop after a small sample
		})
	fmt.Println(n, st.Stopped)
	// Output: 3 true
}
