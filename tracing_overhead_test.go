package fishstore

import (
	"testing"
	"time"

	"fishstore/internal/psf"
	"fishstore/internal/storage"
	"fishstore/internal/trace"
)

// TestTracingDisabledOverheadBounded is the satellite acceptance check that
// an attached-but-disabled tracer is free: interleaved fixed-work ingest
// windows against a metrics-only store and an identical store whose tracer
// is disabled, comparing best-of times so scheduler noise cancels. The bar
// is 2% — the disabled path is a single atomic load per operation.
func TestTracingDisabledOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const (
		windowBatches = 100
		rounds        = 5
		attempts      = 3
	)
	batch := make([][]byte, 16)
	for i := range batch {
		batch[i] = genEvent(i, "PushEvent", "spark")
	}

	open := func(tr *trace.Tracer) *Store {
		s := openTestStore(t, Options{
			PageBits: 16, MemPages: 8,
			Device: storage.NewMem(),
			Tracer: tr,
		})
		if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
			t.Fatal(err)
		}
		return s
	}
	window := func(s *Store) time.Duration {
		sess := s.NewSession()
		defer sess.Close()
		start := time.Now()
		for i := 0; i < windowBatches; i++ {
			if _, err := sess.Ingest(batch); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	for attempt := 1; ; attempt++ {
		tr := trace.New(trace.Options{})
		tr.SetEnabled(false)
		plain := open(nil)
		traced := open(tr)

		base, withTracer := time.Duration(1<<62), time.Duration(1<<62)
		window(plain) // warm-up: page allocation, PSF setup
		window(traced)
		for r := 0; r < rounds; r++ {
			if d := window(plain); d < base {
				base = d
			}
			if d := window(traced); d < withTracer {
				withTracer = d
			}
		}
		plain.Close()
		traced.Close()

		overhead := float64(withTracer-base) / float64(base)
		t.Logf("attempt %d: metrics-only %v, tracer-disabled %v, overhead %.2f%%",
			attempt, base, withTracer, overhead*100)
		if overhead <= 0.02 {
			return
		}
		if attempt >= attempts {
			t.Fatalf("disabled-tracer overhead %.2f%% > 2%% across %d attempts", overhead*100, attempts)
		}
	}
}

// TestTracingDisabledZeroAllocsPerRecord checks the disabled span path adds
// no allocations per record: per-Ingest allocation counts with an attached,
// disabled tracer must equal the metrics-only store's. Page sizing keeps
// the whole measured run inside one in-memory page so no flush or eviction
// allocates mid-measurement in either store.
func TestTracingDisabledZeroAllocsPerRecord(t *testing.T) {
	batch := make([][]byte, 8)
	for i := range batch {
		batch[i] = genEvent(i, "PushEvent", "spark")
	}
	const runs = 50

	measure := func(tr *trace.Tracer) float64 {
		s := openTestStore(t, Options{
			PageBits: 21, MemPages: 4, // 8MB of memory: no flush during the run
			Tracer: tr,
		})
		defer s.Close()
		if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
			t.Fatal(err)
		}
		sess := s.NewSession()
		defer sess.Close()
		return testing.AllocsPerRun(runs, func() {
			if _, err := sess.Ingest(batch); err != nil {
				t.Fatal(err)
			}
		})
	}

	tr := trace.New(trace.Options{})
	tr.SetEnabled(false)
	plain := measure(nil)
	disabled := measure(tr)
	t.Logf("allocs per batch: metrics-only %.2f, tracer-disabled %.2f", plain, disabled)
	if delta := disabled - plain; delta > 0.01 {
		t.Fatalf("disabled tracer adds %.2f allocs per %d-record batch, want 0", delta, len(batch))
	}
}
