package fishstore

import (
	"sync/atomic"

	"fishstore/internal/hashtable"
	"fishstore/internal/record"
)

// linkPointer splices the key pointer at kptAddr (word index wi of words,
// which alias the live page frame) into the hash chain for signature h,
// implementing Algorithm 1 (Appendix D) / Fig 8.
//
// Invariant maintained: a hash chain never contains a forward link (a
// pointer from a lower to a higher address), so chain traversals move
// strictly from the tail toward older data and never jump back into memory
// after reaching disk.
//
// The easy case CASes the hash entry to point at our key pointer, retrying
// while the entry still points below us. Once the entry points above us we
// walk the chain to the unique splice point P — the first pointer with
// P.addr > kptAddr >= P.prev — and CAS P's previous address. A failed CAS
// there means a concurrent insert landed after P; we resume walking from P.
// No CAS failure ever requires reallocating the record, so write
// amplification is zero.
func (s *Store) linkPointer(h uint64, kptAddr uint64, wordA *uint64) error {
	slot, err := s.table.FindOrCreate(h)
	if err != nil {
		return err
	}
	// Easy case: hash entry points below us (or chain is empty).
	for {
		entryWord := slot.Load()
		entryAddr := hashtable.Unpack(entryWord).Address
		if entryAddr >= kptAddr {
			break // Fig 8(b): forward link would form; go find the splice point
		}
		record.SetPrevAddress(wordA, entryAddr)
		if slot.CompareAndSwapAddress(entryWord, kptAddr) {
			return nil
		}
	}

	// Hard case: walk down from the entry. Every address we touch is above
	// kptAddr and kptAddr is near the tail, so all loads hit the in-memory
	// circular buffer.
	cur := slot.Address()
	for {
		pw := s.pointerWord(cur)
		pa := atomic.LoadUint64(pw)
		prev := record.PrevAddressOf(pa)
		if prev > kptAddr {
			cur = prev // keep walking toward older records
			continue
		}
		// Splice between cur and prev: our.prev = prev, cur.prev = us.
		record.SetPrevAddress(wordA, prev)
		if record.SwapPrevAddress(pw, pa, kptAddr) {
			return nil
		}
		// Fig 8(c): somebody spliced after cur first; re-examine cur.
	}
}

// linkPointerNaive is the unmodified-FASTER strategy used by the Fig 17
// ablation (FishStore-badCAS): one CAS attempt on the hash entry; on failure
// the caller must invalidate and reallocate the whole record.
func (s *Store) linkPointerNaive(h uint64, kptAddr uint64, wordA *uint64) (bool, error) {
	slot, err := s.table.FindOrCreate(h)
	if err != nil {
		return false, err
	}
	entryWord := slot.Load()
	entryAddr := hashtable.Unpack(entryWord).Address
	if entryAddr >= kptAddr {
		// Reallocation is the only way to avoid a forward link here.
		return false, nil
	}
	record.SetPrevAddress(wordA, entryAddr)
	return slot.CompareAndSwapAddress(entryWord, kptAddr), nil
}

// pointerWord returns a pointer to the in-memory word holding the key
// pointer at addr. The caller must hold epoch protection and addr must be at
// or above the safe head address.
func (s *Store) pointerWord(addr uint64) *uint64 {
	w := s.log.WordsAt(addr, 1)
	return &w[0]
}
