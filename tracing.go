package fishstore

import (
	"context"
	"runtime/pprof"
	"sync/atomic"

	"fishstore/internal/metrics"
	"fishstore/internal/storage"
	"fishstore/internal/trace"
)

// This file is the store-side glue for the span layer (internal/trace): the
// process-wide default tracer, the device wrapping that gives storage I/O
// its own spans, the root-span tee into the metrics trace pipeline (flight
// recorder + TraceSink), the /debug/fishstore/spans export, and the
// prebuilt pprof label sets the hot paths switch between.

// defaultTracer is consulted by Open/Recover when Options.Tracer is nil,
// mirroring SetDefaultMetricsRegistry: process-wide tooling (fishbench
// -span-out) can trace every store opened by experiment code that doesn't
// plumb a tracer through its own options.
var defaultTracer atomic.Pointer[trace.Tracer]

// SetDefaultTracer installs a tracer used by every subsequently opened Store
// whose Options.Tracer is nil. Pass nil to restore the default (no tracing).
func SetDefaultTracer(t *trace.Tracer) {
	if t == nil {
		defaultTracer.Store(nil)
		return
	}
	defaultTracer.Store(t)
}

// Tracer returns the store's span tracer (nil when tracing is off). Use it
// to export spans directly: s.Tracer().WriteChrome(w).
func (s *Store) Tracer() *trace.Tracer { return s.tracer }

// defaultProfileLabels mirrors defaultTracer for Options.ProfileLabels, so
// profiling tools (fishbench -cpuprofile) can label every store opened by
// experiment code that doesn't plumb the option through.
var defaultProfileLabels atomic.Bool

// SetDefaultProfileLabels makes every subsequently opened Store apply
// runtime/pprof goroutine labels as if Options.ProfileLabels were set.
func SetDefaultProfileLabels(on bool) { defaultProfileLabels.Store(on) }

// resolveTracer resolves Options.Tracer (explicit, process default, or nil)
// plus the ProfileLabels process default, and — when tracing is on — wraps
// the device so every read and write gets
// its own sampled span. It mutates o in place and must run after initMetrics
// (so the span wrapper is outermost and storage.Unwrap still reaches the
// concrete device) and before the hybrid log is built.
func resolveTracer(o *Options) *trace.Tracer {
	if !o.ProfileLabels {
		o.ProfileLabels = defaultProfileLabels.Load()
	}
	tr := o.Tracer
	if tr == nil {
		tr = defaultTracer.Load()
	}
	if tr == nil {
		return nil
	}
	o.Tracer = tr
	o.Device = storage.NewTraced(o.Device, tr)
	return tr
}

// wireSpanTee forwards every finished *root* span into the metrics trace
// pipeline as a span.<name> event, landing in the flight recorder and the
// user's TraceSink in span-finish order. Only roots cross over: the trace
// stream stays control-plane granular (one event per batch/scan/flush,
// never per record), while the full tree remains in the tracer's ring for
// /debug/fishstore/spans. When several stores share one tracer, the last
// store opened provides the tee (same rule as the flight recorder).
func (s *Store) wireSpanTee() {
	if s.tracer == nil {
		return
	}
	reg := s.metrics.reg
	s.tracer.SetOnFinish(func(d trace.SpanData) {
		if !d.Root() {
			return
		}
		reg.Trace("span."+d.Name,
			metrics.F("trace_id", d.TraceID),
			metrics.F("duration_ns", d.Duration.Nanoseconds()))
	})
}

// profileLabels holds prebuilt pprof label sets: switching the goroutine's
// labels on the hot path is then a pointer swap inside the runtime rather
// than a per-record label-set construction.
type profileLabels struct {
	ingest context.Context
	// phase contexts in phaseNames order (parse, psf_eval, memcpy, index,
	// others), each carrying operation=ingest too.
	ingestPhase [5]context.Context
	flush       context.Context
	checkpoint  context.Context
	recover     context.Context
}

func newProfileLabels() *profileLabels {
	base := context.Background()
	pl := &profileLabels{
		ingest:     pprof.WithLabels(base, pprof.Labels("operation", "ingest")),
		flush:      pprof.WithLabels(base, pprof.Labels("operation", "flush")),
		checkpoint: pprof.WithLabels(base, pprof.Labels("operation", "checkpoint")),
		recover:    pprof.WithLabels(base, pprof.Labels("operation", "recover")),
	}
	for i, name := range phaseNames {
		pl.ingestPhase[i] = pprof.WithLabels(base,
			pprof.Labels("operation", "ingest", "phase", name))
	}
	return pl
}

// setLabels applies ctx's pprof labels to the current goroutine; restoreLabels
// clears them. Both are nil-safe on the receiver so call sites stay branchless.
func (pl *profileLabels) set(ctx context.Context) {
	if pl != nil {
		pprof.SetGoroutineLabels(ctx)
	}
}

func (pl *profileLabels) clear() {
	if pl != nil {
		pprof.SetGoroutineLabels(context.Background())
	}
}
