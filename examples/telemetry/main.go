// Machine telemetry — the running example of §1 and §2.2 (Fig 1).
//
// Machines report CPU and memory utilization. An analyst registers:
//
//	f1: cpu < 15 && mem > 75     (low CPU, high memory — suspicious)
//	f2: Π_machine                (group by machine name, for drill-down)
//	f3: bucket(cpu, 25)          (CPU usage ranges 0-25, 25-50, 50-75, 75-100)
//
// and immediately retrieves the matching subsets while data keeps flowing.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fishstore"
	"fishstore/internal/psf"
)

func telemetryRecord(rng *rand.Rand, t int) []byte {
	machine := fmt.Sprintf("m%d", rng.Intn(6))
	cpu := rng.Float64() * 100
	mem := rng.Float64() * 100
	return []byte(fmt.Sprintf(
		`{"time": "1:%02dpm", "machine": %q, "cpu": %.2f, "mem": %.2f}`,
		t%60, machine, cpu, mem))
}

func main() {
	store, err := fishstore.Open(fishstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	f1, err := psf.Predicate("lowcpu-highmem", `cpu < 15 && mem > 75`)
	if err != nil {
		log.Fatal(err)
	}
	id1, _, err := store.RegisterPSF(f1)
	if err != nil {
		log.Fatal(err)
	}
	id2, _, err := store.RegisterPSF(psf.Projection("machine"))
	if err != nil {
		log.Fatal(err)
	}
	id3, _, err := store.RegisterPSF(psf.RangeBucket("cpu", 25))
	if err != nil {
		log.Fatal(err)
	}

	// Ingest a stream of telemetry.
	rng := rand.New(rand.NewSource(7))
	sess := store.NewSession()
	var batch [][]byte
	for t := 0; t < 5000; t++ {
		batch = append(batch, telemetryRecord(rng, t))
		if len(batch) == 100 {
			if _, err := sess.Ingest(batch); err != nil {
				log.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	sess.Close()

	// f1: investigate machines with low CPU and high memory.
	var suspicious int
	if _, err := store.Scan(fishstore.PropertyBool(id1, true), fishstore.ScanOptions{},
		func(r fishstore.Record) bool { suspicious++; return true }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("low-CPU/high-MEM records: %d\n", suspicious)

	// f2: drill into one machine's logs.
	fmt.Println("\nfirst 3 records from machine m3:")
	shown := 0
	if _, err := store.Scan(fishstore.PropertyString(id2, "m3"), fishstore.ScanOptions{},
		func(r fishstore.Record) bool {
			fmt.Printf("  %s\n", r.Payload)
			shown++
			return shown < 3
		}); err != nil {
		log.Fatal(err)
	}

	// f3: CPU usage histogram via the range-bucket PSF.
	fmt.Println("\nCPU usage buckets:")
	for _, lo := range []float64{0, 25, 50, 75} {
		var n int
		if _, err := store.Scan(fishstore.PropertyNumber(id3, lo), fishstore.ScanOptions{},
			func(fishstore.Record) bool { n++; return true }); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%3.0f%%, %3.0f%%): %d records\n", lo, lo+25, n)
	}
}
