// Quickstart: open a store, register a projection and a predicate PSF,
// ingest a handful of JSON records, and retrieve subsets three ways.
package main

import (
	"fmt"
	"log"

	"fishstore"
	"fishstore/internal/psf"
)

func main() {
	// An in-memory store with defaults (partial JSON parser, null device).
	store, err := fishstore.Open(fishstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// PSF 1: group records by the value of a (nested) field.
	repoID, _, err := store.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		log.Fatal(err)
	}
	// PSF 2: index records satisfying a predicate.
	def, err := psf.Predicate("spark-prs", `repo.name == "spark" && type == "PullRequestEvent"`)
	if err != nil {
		log.Fatal(err)
	}
	prID, _, err := store.RegisterPSF(def)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest a batch of raw JSON records through a worker session.
	batch := [][]byte{
		[]byte(`{"id": 1, "type": "PullRequestEvent", "actor": {"name": "das"}, "repo": {"name": "spark"}}`),
		[]byte(`{"id": 2, "type": "PushEvent", "actor": {"name": "matei"}, "repo": {"name": "spark"}}`),
		[]byte(`{"id": 3, "type": "PushEvent", "actor": {"name": "matei"}, "repo": {"name": "storm"}}`),
		[]byte(`{"id": 4, "type": "PullRequestEvent", "actor": {"name": "karthik"}, "repo": {"name": "spark"}}`),
		[]byte(`{"id": 5, "type": "PushEvent", "actor": {"name": "karthik"}, "repo": {"name": "heron"}}`),
	}
	sess := store.NewSession()
	stats, err := sess.Ingest(batch)
	if err != nil {
		log.Fatal(err)
	}
	sess.Close()
	fmt.Printf("ingested %d records, %d index entries\n", stats.Records, stats.Properties)

	// Retrieve: all records in repo "spark".
	fmt.Println("\nrepo.name == spark:")
	if _, err := store.Scan(fishstore.PropertyString(repoID, "spark"), fishstore.ScanOptions{},
		func(r fishstore.Record) bool {
			fmt.Printf("  %s\n", r.Payload)
			return true
		}); err != nil {
		log.Fatal(err)
	}

	// Retrieve: records matching the predicate.
	fmt.Println("\nspark pull requests:")
	if _, err := store.Scan(fishstore.PropertyBool(prID, true), fishstore.ScanOptions{},
		func(r fishstore.Record) bool {
			fmt.Printf("  %s\n", r.Payload)
			return true
		}); err != nil {
		log.Fatal(err)
	}

	// Early stop ("Touch"): grab just one sample record.
	fmt.Println("\nfirst spark record only:")
	if _, err := store.Scan(fishstore.PropertyString(repoID, "spark"), fishstore.ScanOptions{},
		func(r fishstore.Record) bool {
			fmt.Printf("  %s\n", r.Payload)
			return false // stop after the first match
		}); err != nil {
		log.Fatal(err)
	}
}
