// Streaming join — §2.3's point-lookup use case: "join an input stream of
// tweets with Github commits from the same user in the last minute ...
// register a PSF that indexes all values of field actor.name, to enable
// such fast lookups aided by the in-memory portion of the log".
//
// One goroutine ingests Github events into FishStore; a second consumes a
// "tweet stream" and, for each tweet, probes the actor.name index for that
// user's recent commits — a hash-join whose build side is the live
// ingestion log.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"fishstore"
	"fishstore/internal/datagen"
	"fishstore/internal/psf"
)

func main() {
	store, err := fishstore.Open(fishstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Build side: index every Github event by actor name.
	actor, _, err := store.RegisterPSF(psf.Projection("actor.login"))
	if err != nil {
		log.Fatal(err)
	}

	// Warm the build side so early probes have something to join against.
	warm := store.NewSession()
	if _, err := warm.Ingest(datagen.Batch(datagen.NewGithub(2, 600), 4000)); err != nil {
		log.Fatal(err)
	}
	warm.Close()

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Ingestion worker: a continuous stream of Github events.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := store.NewSession()
		defer sess.Close()
		gen := datagen.NewGithub(3, 600)
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := sess.Ingest(datagen.Batch(gen, 64)); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Probe side: tweets arrive; join each with the author's recent
	// commits via index lookups over the in-memory log suffix.
	rng := rand.New(rand.NewSource(9))
	type joined struct {
		user    string
		commits int
	}
	var results []joined
	for i := 0; i < 2000; i++ {
		user := fmt.Sprintf("user-%d", 100+rng.Intn(5000))
		var commits int
		// Restrict the probe to the "last minute": the in-memory suffix.
		window := store.HeadAddress()
		if _, err := store.Scan(fishstore.PropertyString(actor, user),
			fishstore.ScanOptions{From: window, Mode: fishstore.ScanForceIndex},
			func(fishstore.Record) bool { commits++; return true }); err != nil {
			log.Fatal(err)
		}
		if commits > 0 {
			results = append(results, joined{user, commits})
		}
	}
	close(done)
	wg.Wait()

	fmt.Printf("probed 2000 tweets against the live commit index\n")
	fmt.Printf("%d tweets joined with at least one recent commit\n", len(results))
	max := joined{}
	for _, r := range results {
		if r.commits > max.commits {
			max = r
		}
	}
	if max.user != "" {
		fmt.Printf("busiest joined author: %s with %d recent commits\n", max.user, max.commits)
	}
}
