// Streaming queries — §2.3's fourth use case: a subscriber registers a PSF
// and receives matching records as they are ingested, ready to feed a
// streaming engine with already-schematized data.
package main

import (
	"fmt"
	"log"
	"sync"

	"fishstore"
	"fishstore/internal/datagen"
	"fishstore/internal/psf"
)

func main() {
	store, err := fishstore.Open(fishstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Index opened issues and subscribe to them.
	def, err := psf.Predicate("opened-issues", `type == "IssuesEvent" && payload.action == "opened"`)
	if err != nil {
		log.Fatal(err)
	}
	id, _, err := store.RegisterPSF(def)
	if err != nil {
		log.Fatal(err)
	}
	sub := store.Subscribe(fishstore.PropertyBool(id, true), 1024)

	// The "streaming engine": incrementally counts deliveries.
	var wg sync.WaitGroup
	wg.Add(1)
	var streamed int
	go func() {
		defer wg.Done()
		for range sub.Records() {
			streamed++
		}
	}()

	// A producer ingests Github events.
	gen := datagen.NewGithub(11, 800)
	sess := store.NewSession()
	total := 0
	for i := 0; i < 40; i++ {
		batch := datagen.Batch(gen, 128)
		st, err := sess.Ingest(batch)
		if err != nil {
			log.Fatal(err)
		}
		total += st.Records
	}
	sess.Close()
	sub.Cancel()
	wg.Wait()

	// Cross-check the stream against a log scan.
	var scanned int
	if _, err := store.Scan(fishstore.PropertyBool(id, true), fishstore.ScanOptions{},
		func(fishstore.Record) bool { scanned++; return true }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ingested %d events\n", total)
	fmt.Printf("streamed %d opened issues to the subscriber (dropped %d)\n", streamed, sub.Dropped())
	fmt.Printf("scan over the log found %d — stream and store agree: %v\n",
		scanned, streamed+int(sub.Dropped()) == scanned)
}
