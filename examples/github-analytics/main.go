// Github analytics — the running example of §2.3: ad-hoc analysis with
// on-demand indexing, a recurring query that gets faster as its index
// coverage grows, and point lookups over the in-memory log suffix.
package main

import (
	"fmt"
	"log"

	"fishstore"
	"fishstore/internal/datagen"
	"fishstore/internal/psf"
)

func main() {
	store, err := fishstore.Open(fishstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	gen := datagen.NewGithub(42, 1024)
	sess := store.NewSession()
	ingest := func(n int) {
		for n > 0 {
			k := 128
			if k > n {
				k = n
			}
			if _, err := sess.Ingest(datagen.Batch(gen, k)); err != nil {
				log.Fatal(err)
			}
			n -= k
		}
	}

	// Phase 1: data arrives with no PSFs registered — raw dump, zero
	// parsing cost.
	ingest(3000)
	fmt.Printf("phase 1: %d bytes ingested unindexed\n", store.TailAddress()-store.BeginAddress())

	// Phase 2 (ad-hoc analysis): an analyst decides to study Spark pull
	// requests; registration returns a safe boundary after which the index
	// is complete.
	def, err := psf.Predicate("spark-prs", `repo.name == "spark" && type == "PullRequestEvent"`)
	if err != nil {
		log.Fatal(err)
	}
	prID, res, err := store.RegisterPSF(def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: PSF registered; indexed from address %d\n", res.SafeRegisterBoundary)
	ingest(3000)

	// An auto scan covers the whole log: a full scan before the boundary, a
	// hash-chain traversal after it.
	var matches int
	st, err := store.Scan(fishstore.PropertyBool(prID, true), fishstore.ScanOptions{},
		func(r fishstore.Record) bool { matches++; return true })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  spark PRs: %d (plan: %d full segment(s), %d indexed)\n",
		matches, countSeg(st.Plan, false), countSeg(st.Plan, true))

	// Phase 3 (recurring query): hourly top committers — the same query
	// over sliding windows gets cheaper as coverage grows; here we show the
	// index-only portion growing.
	pushDef, err := psf.Predicate("spark-pushes", `repo.name == "spark" && type == "PushEvent"`)
	if err != nil {
		log.Fatal(err)
	}
	pushID, _, err := store.RegisterPSF(pushDef)
	if err != nil {
		log.Fatal(err)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		ingest(2000)
		var pushes int
		st, err := store.Scan(fishstore.PropertyBool(pushID, true), fishstore.ScanOptions{},
			func(fishstore.Record) bool { pushes++; return true })
		if err != nil {
			log.Fatal(err)
		}
		var idxBytes, fullBytes uint64
		for _, seg := range st.Plan {
			if seg.Indexed {
				idxBytes += seg.To - seg.From
			} else {
				fullBytes += seg.To - seg.From
			}
		}
		fmt.Printf("phase 3 attempt %d: %d spark pushes; %.0f%% of scan range index-covered\n",
			attempt, pushes, 100*float64(idxBytes)/float64(idxBytes+fullBytes))
	}

	// Phase 4 (point lookups): join-style lookups on actor.id, served from
	// the in-memory portion of the log via the hash index.
	actorID, _, err := store.RegisterPSF(psf.Projection("actor.id"))
	if err != nil {
		log.Fatal(err)
	}
	ingest(2000)
	for _, actor := range []float64{150, 2750, 4100} {
		var n int
		if _, err := store.Lookup(fishstore.PropertyNumber(actorID, actor),
			func(fishstore.Record) bool { n++; return true }); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase 4: actor %.0f has %d recent events\n", actor, n)
	}
	sess.Close()
}

func countSeg(plan []fishstore.Segment, indexed bool) int {
	n := 0
	for _, s := range plan {
		if s.Indexed == indexed {
			n++
		}
	}
	return n
}
