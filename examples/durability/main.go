// Durability walkthrough — Appendix E: fuzzy-style checkpointing of the
// hash index, crash recovery with log-suffix replay, and continued
// ingestion on the recovered store.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fishstore"
	"fishstore/internal/datagen"
	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "fishstore-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "log.dat")
	ckptDir := filepath.Join(dir, "checkpoint")

	// ---- Phase 1: a store backed by a real file. ----
	dev, err := storage.OpenFile(logPath)
	if err != nil {
		log.Fatal(err)
	}
	store, err := fishstore.Open(fishstore.Options{Device: dev, PageBits: 16, MemPages: 4})
	if err != nil {
		log.Fatal(err)
	}
	id, _, err := store.RegisterPSF(psf.Projection("business_id"))
	if err != nil {
		log.Fatal(err)
	}

	gen := datagen.NewYelp(1, 400)
	sess := store.NewSession()
	ingest := func(n int) {
		if _, err := sess.Ingest(datagen.Batch(gen, n)); err != nil {
			log.Fatal(err)
		}
	}
	ingest(1000)
	fmt.Printf("ingested 1000 reviews; tail=%d durable=%d\n",
		store.TailAddress(), store.FlushedUntil())

	// ---- Phase 2: checkpoint, then keep ingesting. ----
	if err := store.Checkpoint(ckptDir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint taken at tail=%d\n", store.TailAddress())
	ingest(500) // these 500 will be recovered by log replay
	sess.Close()

	// Close flushes the tail; a real crash would lose at most the unsealed
	// in-memory suffix.
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- simulated crash --")

	// ---- Phase 3: recover. ----
	dev2, err := storage.OpenFileExisting(logPath)
	if err != nil {
		log.Fatal(err)
	}
	recovered, info, err := fishstore.Recover(ckptDir, fishstore.RecoverOptions{
		Options: fishstore.Options{Device: dev2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	fmt.Printf("recovered: checkpoint covered <%d, replayed %d records up to %d\n",
		info.CheckpointTail, info.ReplayedRecords, info.RecoveredTail)

	// The restored business_id index still answers lookups: regenerate the
	// first ingested record (same seed) and retrieve its business's reviews
	// through the recovered hash chains.
	first := string(datagen.NewYelp(1, 400).Next())
	const marker = `"business_id": "`
	i := indexOf(first, marker)
	business := first[i+len(marker) : i+len(marker)+7]
	var viaIndex int
	if _, err := recovered.Scan(fishstore.PropertyString(id, business),
		fishstore.ScanOptions{Mode: fishstore.ScanForceIndex},
		func(fishstore.Record) bool { viaIndex++; return true }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index lookup for business %s after recovery: %d review(s)\n", business, viaIndex)

	var total int
	// Count everything via a full-scan cross-check using a fresh predicate.
	allID, _, err := recovered.RegisterPSF(psf.MustPredicate("all", `stars >= 1`))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := recovered.Scan(fishstore.PropertyBool(allID, true),
		fishstore.ScanOptions{Mode: fishstore.ScanForceFull},
		func(fishstore.Record) bool { total++; return true }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records readable after recovery: %d (want 1500)\n", total)

	// ---- Phase 4: the recovered store keeps working. ----
	sess2 := recovered.NewSession()
	if _, err := sess2.Ingest(datagen.Batch(datagen.NewYelp(2, 400), 100)); err != nil {
		log.Fatal(err)
	}
	sess2.Close()
	fmt.Printf("post-recovery ingestion OK; new tail=%d\n", recovered.TailAddress())
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
