package fishstore

import (
	"fmt"
	"math"

	"fishstore/internal/expr"
	"fishstore/internal/psf"
	"fishstore/internal/record"
)

// ScanRange answers a numeric range query [lo, hi) through a range-bucket
// PSF, the technique of Appendix B(5): "users can build indices over a
// bucketing function. Then, a range query can be answered by retrieving all
// records in the covering buckets, with post-filtering."
//
// id must identify a KindRangeBucket PSF. Every bucket overlapping
// [lo, hi) is retrieved through its hash chain; records whose actual field
// value falls outside the range are filtered out by re-parsing the field.
func (s *Store) ScanRange(id psf.ID, lo, hi float64, opts ScanOptions, cb func(r Record) bool) (ScanStats, error) {
	def, ok := s.registry.Lookup(id)
	if !ok {
		return ScanStats{}, fmt.Errorf("fishstore: unknown PSF id %d", id)
	}
	if def.Kind != psf.KindRangeBucket {
		return ScanStats{}, fmt.Errorf("fishstore: PSF %d is %s, not range-bucket", id, def.Kind)
	}
	if !(lo < hi) {
		return ScanStats{}, nil
	}
	psess, err := s.pf.NewSession(def.Fields)
	if err != nil {
		return ScanStats{}, err
	}
	field := def.Fields[0]

	// Post-filter: parse the field and check the true range.
	var agg ScanStats
	stopped := false
	filter := func(r Record) bool {
		parsed, perr := psess.Parse(r.Payload)
		if perr != nil {
			return true
		}
		v := parsed.Lookup(field)
		if v.Kind != expr.KindNumber || v.Num < lo || v.Num >= hi {
			return true
		}
		agg.Matched++
		if !cb(r) {
			stopped = true
			return false
		}
		return true
	}

	first := math.Floor(lo/def.BucketWidth) * def.BucketWidth
	for b := first; b < hi; b += def.BucketWidth {
		st, err := s.Scan(PropertyNumber(id, b), opts, filter)
		agg.Visited += st.Visited
		agg.IndexHops += st.IndexHops
		agg.FullScanBytes += st.FullScanBytes
		agg.IOs += st.IOs
		agg.ReadBytes += st.ReadBytes
		agg.Quarantined += st.Quarantined
		agg.Plan = append(agg.Plan, st.Plan...)
		if err != nil {
			return agg, err
		}
		if stopped {
			agg.Stopped = true
			break
		}
	}
	return agg, nil
}

// Iterate walks every visible record in [from, to) in address order,
// independent of any PSF — the raw access path used to migrate older raw
// data out of FishStore (e.g. into columnar formats, §1.4: "older raw data
// ... may eventually migrate to formats such as Parquet"). Zero values for
// from/to mean begin/tail.
func (s *Store) Iterate(from, to uint64, cb func(r Record) bool) error {
	from, to = s.clampRange(from, to)
	g := s.epoch.Acquire()
	defer g.Release()
	return s.visitRange(nil, g, from, to, nil, nil, func(addr uint64, v record.View) bool {
		if v.Header().Indirect {
			return true // skip historical index records
		}
		return cb(Record{Address: addr, Payload: v.Payload()})
	})
}
