package fishstore

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"fishstore/internal/hlog"
	"fishstore/internal/metrics"
	"fishstore/internal/psf"
	"fishstore/internal/record"
	"fishstore/internal/storage"
)

// fillToDevice ingests events until several pages have been evicted below
// HeadAddress, then flushes so the on-device image is complete. Every event's
// repo is "spark". Returns the number of records ingested.
func fillToDevice(t *testing.T, s *Store) int {
	t.Helper()
	sess := s.NewSession()
	defer sess.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.log.HeadAddress() <= uint64(hlog.BeginAddress) {
		t.Fatalf("head did not advance past the first page (head=%d); records never reached the device",
			s.log.HeadAddress())
	}
	return n
}

// deviceRecordAddrs walks record headers on the raw device from BeginAddress
// up to limit, returning each record's address and size in words.
func deviceRecordAddrs(t *testing.T, dev storage.Device, limit uint64) (addrs []uint64, sizes []int) {
	t.Helper()
	var buf [8]byte
	for addr := uint64(hlog.BeginAddress); addr < limit; {
		if _, err := dev.ReadAt(buf[:], int64(addr)); err != nil {
			t.Fatal(err)
		}
		h := record.UnpackHeader(uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 |
			uint64(buf[3])<<24 | uint64(buf[4])<<32 | uint64(buf[5])<<40 |
			uint64(buf[6])<<48 | uint64(buf[7])<<56)
		if h.SizeWords <= 0 {
			break
		}
		if !h.Filler {
			addrs = append(addrs, addr)
			sizes = append(sizes, h.SizeWords)
		}
		addr += uint64(h.SizeWords) * 8
	}
	return addrs, sizes
}

// flipPayloadByte flips one bit in the last payload word of the record at
// addr (the word just before the checksum trailer), leaving the header and
// key pointers untouched so only the checksum can catch the damage.
func flipPayloadByte(t *testing.T, dev storage.Device, addr uint64, sizeWords int) {
	t.Helper()
	off := int64(addr) + int64(sizeWords-2)*8
	var b [1]byte
	if _, err := dev.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	//lint:ignore sealcover deliberate corruption: flips one bit under a sealed trailer to trip VerifyOnRead
	if _, err := dev.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumSealedOnFlush: after a flush, every on-device record must carry
// a valid seal, and the verifier must count them all as sealed.
func TestChecksumSealedOnFlush(t *testing.T) {
	mem := storage.NewMem()
	s := openTestStore(t, Options{Device: mem, PageBits: 12, MemPages: 4})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	n := fillToDevice(t, s)

	rep, err := s.VerifyLog(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck failed on a healthy checksummed log: %s", rep.Corruption)
	}
	if rep.SealedRecords != int64(n) {
		t.Fatalf("SealedRecords = %d, want %d", rep.SealedRecords, n)
	}
	if rep.UncheckedRecords != 0 {
		t.Fatalf("UncheckedRecords = %d, want 0", rep.UncheckedRecords)
	}
}

// TestVerifyDetectsFlippedPayloadBit: a single flipped payload bit on the
// device must fail verification with the checksum-mismatch reason, at the
// damaged record's address.
func TestVerifyDetectsFlippedPayloadBit(t *testing.T) {
	mem := storage.NewMem()
	s := openTestStore(t, Options{Device: mem, PageBits: 12, MemPages: 4})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	fillToDevice(t, s)

	addrs, sizes := deviceRecordAddrs(t, mem, s.log.HeadAddress())
	if len(addrs) < 3 {
		t.Fatalf("only %d records below head", len(addrs))
	}
	victim := len(addrs) / 2
	flipPayloadByte(t, mem, addrs[victim], sizes[victim])

	rep, err := s.VerifyLog(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verifier accepted a log with a flipped payload bit")
	}
	if rep.Corruption.Address != addrs[victim] {
		t.Fatalf("corruption at %d, want %d", rep.Corruption.Address, addrs[victim])
	}
}

// TestVerifyOnReadQuarantine: with VerifyOnRead, both scan paths must skip a
// corrupt device record — never surfacing its payload — and count it.
func TestVerifyOnReadQuarantine(t *testing.T) {
	mem := storage.NewMem()
	reg := metrics.NewRegistry()
	s := openTestStore(t, Options{Device: mem, PageBits: 12, MemPages: 4,
		VerifyOnRead: true, Metrics: reg})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	n := fillToDevice(t, s)

	// Corrupt the OLDEST record: it is the terminal link of the hash chain,
	// so the chain walk visits every healthy record before hitting it.
	addrs, sizes := deviceRecordAddrs(t, mem, s.log.HeadAddress())
	flipPayloadByte(t, mem, addrs[0], sizes[0])

	// Full scan: the corrupt record is skipped, everything else surfaces.
	var got int
	st, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceFull}, func(r Record) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n-1 {
		t.Fatalf("full scan surfaced %d records, want %d (corrupt one quarantined)", got, n-1)
	}
	if st.Quarantined != 1 {
		t.Fatalf("full scan Quarantined = %d, want 1", st.Quarantined)
	}

	// Index scan: the walk terminates at the corrupt link (its prev pointer
	// is untrustworthy), having already delivered all newer records.
	got = 0
	st, err = s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex}, func(r Record) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n-1 {
		t.Fatalf("index scan surfaced %d records, want %d", got, n-1)
	}
	if st.Quarantined != 1 {
		t.Fatalf("index scan Quarantined = %d, want 1", st.Quarantined)
	}

	if v := reg.Snapshot().Value("fishstore_corrupt_records_total"); v < 2 {
		t.Fatalf("fishstore_corrupt_records_total = %v, want >= 2", v)
	}
}

// TestRecoverTruncatesCorruptSuffixRecord: recovery must never admit a
// record whose payload fails its checksum — the durable end is truncated
// just before it, dropping the rest of the suffix.
func TestRecoverTruncatesCorruptSuffixRecord(t *testing.T) {
	mem := storage.NewMem()
	opts := Options{Device: mem, PageBits: 12, MemPages: 4, TableBuckets: 1 << 8}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 40; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.Checkpoint(ckptDir); err != nil {
		t.Fatal(err)
	}
	ckptTail := s.log.TailAddress()
	for i := 40; i < 60; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first record of the post-checkpoint suffix on the device.
	addrs, sizes := deviceRecordAddrs(t, mem, ^uint64(0))
	victim := -1
	for i, a := range addrs {
		if a >= ckptTail {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no suffix record found past the checkpoint tail")
	}
	flipPayloadByte(t, mem, addrs[victim], sizes[victim])

	s2, info, err := Recover(ckptDir, RecoverOptions{Options: Options{Device: mem, TableBuckets: 1 << 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.RecoveredTail > addrs[victim] {
		t.Fatalf("recovered tail %d admits the corrupt record at %d", info.RecoveredTail, addrs[victim])
	}
	if info.ReplayedRecords != 0 {
		t.Fatalf("replayed %d suffix records past a corrupt head-of-suffix, want 0", info.ReplayedRecords)
	}

	rep, err := s2.VerifyLog(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after truncating recovery: %s", rep.Corruption)
	}

	var got int
	if _, err := s2.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("recovered store surfaced %d records, want the 40 checkpointed ones", got)
	}

	// The recovered store is live again.
	sess2 := s2.NewSession()
	if _, err := sess2.Ingest([][]byte{genEvent(999, "PushEvent", "spark")}); err != nil {
		t.Fatal(err)
	}
	sess2.Close()
}

// TestV0LogRecoversUnderChecksumBinary: a log written without checksums
// (format v0) must recover cleanly under a binary that seals by default, and
// new ingestion into the recovered store must produce sealed records.
func TestV0LogRecoversUnderChecksumBinary(t *testing.T) {
	mem := storage.NewMem()
	s, err := Open(Options{Device: mem, PageBits: 12, MemPages: 4, TableBuckets: 1 << 8,
		DisableRecordChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	for i := 0; i < 50; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.Checkpoint(ckptDir); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover with checksums enabled (the default).
	s2, _, err := Recover(ckptDir, RecoverOptions{Options: Options{Device: mem, TableBuckets: 1 << 8,
		VerifyOnRead: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	rep, err := s2.VerifyLog(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck rejected a healthy v0 log: %s", rep.Corruption)
	}
	if rep.UncheckedRecords != 50 {
		t.Fatalf("UncheckedRecords = %d, want 50 v0 records", rep.UncheckedRecords)
	}

	// v0 records scan cleanly even under VerifyOnRead (nothing to check).
	var got int
	if _, err := s2.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("scan over recovered v0 log surfaced %d records, want 50", got)
	}

	// New ingestion seals: flush and re-verify — sealed count now non-zero.
	sess2 := s2.NewSession()
	for i := 0; i < 20; i++ {
		if _, err := sess2.Ingest([][]byte{genEvent(1000+i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}
	sess2.Close()
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err = s2.VerifyLog(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after mixed v0/v1 ingest: %s", rep.Corruption)
	}
	if rep.SealedRecords != 20 {
		t.Fatalf("SealedRecords = %d, want the 20 new v1 records", rep.SealedRecords)
	}
}

// TestDegradedModeAfterPermanentWriteFailure: a permanent flush failure must
// flip the store into read-only degradation — ingest and checkpoint refuse
// with ErrDegraded, reads keep working, and the state is observable.
func TestDegradedModeAfterPermanentWriteFailure(t *testing.T) {
	fd := storage.NewFaultDevice(storage.NewMem(), storage.FaultConfig{Seed: 5})
	reg := metrics.NewRegistry()
	s := openTestStore(t, Options{Device: fd, PageBits: 12, MemPages: 4, Metrics: reg})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	defer sess.Close()
	for i := 0; i < 10; i++ {
		if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
			t.Fatal(err)
		}
	}

	fd.CutNow() // every write from here on fails permanently
	if err := s.Flush(); err == nil {
		t.Fatal("Flush succeeded against a dead device")
	}

	if deg, cause := s.Degraded(); !deg || cause == "" {
		t.Fatalf("Degraded() = %v, %q after a permanent flush failure", deg, cause)
	}
	if _, err := sess.Ingest([][]byte{genEvent(99, "PushEvent", "spark")}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Ingest on a degraded store returned %v, want ErrDegraded", err)
	}
	if err := s.Checkpoint(filepath.Join(t.TempDir(), "ckpt")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Checkpoint on a degraded store returned %v, want ErrDegraded", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second Flush returned %v, want ErrDegraded", err)
	}

	// Reads still work: the 10 in-memory records remain scannable.
	var got int
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("degraded store surfaced %d records, want 10", got)
	}

	stats := s.Stats()
	if !stats.Degraded || stats.DegradedCause == "" {
		t.Fatalf("Stats() = degraded=%v cause=%q, want the degradation visible", stats.Degraded, stats.DegradedCause)
	}
	if v := reg.Snapshot().Value("fishstore_degraded"); v != 1 {
		t.Fatalf("fishstore_degraded gauge = %v, want 1", v)
	}
	ls, err := s.LogComposition(LogSampleOptions{To: 1}) // header-only sample
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Degraded || ls.DegradedCause == "" {
		t.Fatalf("LogSnapshot degraded=%v cause=%q, want flagged", ls.Degraded, ls.DegradedCause)
	}
}

// TestIORetryHealsTransientReads: with Options.IORetry, a one-shot transient
// read fault must be retried and healed invisibly, and counted.
func TestIORetryHealsTransientReads(t *testing.T) {
	mem := storage.NewMem()
	fd := storage.NewFaultDevice(mem, storage.FaultConfig{Seed: 9})
	reg := metrics.NewRegistry()
	s := openTestStore(t, Options{Device: fd, PageBits: 12, MemPages: 4, Metrics: reg,
		IORetry: &storage.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond}})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	n := fillToDevice(t, s)

	fd.FailNextRead(storage.ErrShortRead)
	var got int
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceFull}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatalf("scan failed despite retry policy: %v", err)
	}
	if got != n {
		t.Fatalf("scan surfaced %d records, want %d", got, n)
	}
	if v := reg.Snapshot().Value("fishstore_io_retries_total"); v < 1 {
		t.Fatalf("fishstore_io_retries_total = %v, want >= 1", v)
	}
}
