package fishstore

import (
	"context"
	"errors"
	"testing"
	"time"

	"fishstore/internal/psf"
)

// --- governor unit tests -------------------------------------------------

func testGovernor(lim Limits) *governor {
	return newGovernor(&lim, newStoreMetrics(nil))
}

func TestGovernorIngestBudget(t *testing.T) {
	g := testGovernor(Limits{MaxInFlightIngestBytes: 100})

	if err := g.admitIngest(nil, "", 60); err != nil {
		t.Fatalf("first 60 bytes: %v", err)
	}
	// Over budget with MaxWait 0: immediate ErrBusy, budget untouched.
	if err := g.admitIngest(nil, "", 60); !errors.Is(err, ErrBusy) {
		t.Fatalf("second 60 bytes = %v, want ErrBusy", err)
	}
	if got := g.inflightBytes.Load(); got != 60 {
		t.Fatalf("failed admission leaked budget: in-flight = %d, want 60", got)
	}
	g.releaseIngest("", 60)
	if err := g.admitIngest(nil, "", 100); err != nil {
		t.Fatalf("after release: %v", err)
	}
	g.releaseIngest("", 100)
	if g.rejects.Load() != 1 {
		t.Fatalf("rejects = %d, want 1", g.rejects.Load())
	}
}

// TestGovernorOversizedBatch: a batch bigger than the entire budget must be
// admitted when the budget is idle — otherwise it could never run at all.
func TestGovernorOversizedBatch(t *testing.T) {
	g := testGovernor(Limits{MaxInFlightIngestBytes: 100})
	if err := g.admitIngest(nil, "", 5000); err != nil {
		t.Fatalf("oversized batch on idle budget: %v", err)
	}
	// But not while anything else is in flight.
	if err := g.admitIngest(nil, "", 5000); !errors.Is(err, ErrBusy) {
		t.Fatalf("second oversized batch = %v, want ErrBusy", err)
	}
	g.releaseIngest("", 5000)
	if got := g.inflightBytes.Load(); got != 0 {
		t.Fatalf("in-flight after release = %d, want 0", got)
	}
}

// TestGovernorWaiterAdmitted: a waiter parked in waitSlow is admitted when a
// release frees capacity within MaxWait.
func TestGovernorWaiterAdmitted(t *testing.T) {
	g := testGovernor(Limits{MaxInFlightIngestBytes: 100, MaxWait: 5 * time.Second})
	if err := g.admitIngest(nil, "", 100); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() { admitted <- g.admitIngest(nil, "", 50) }()

	select {
	case err := <-admitted:
		t.Fatalf("waiter admitted (%v) while budget full", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.releaseIngest("", 100)
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("waiter after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after release")
	}
	if g.waits.Load() != 1 {
		t.Fatalf("waits = %d, want 1", g.waits.Load())
	}
}

// TestGovernorWaitCancelled: ctx cancellation aborts a parked waiter with
// the context's error, not ErrBusy.
func TestGovernorWaitCancelled(t *testing.T) {
	g := testGovernor(Limits{MaxInFlightIngestBytes: 100, MaxWait: time.Minute})
	if err := g.admitIngest(nil, "", 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	admitted := make(chan error, 1)
	go func() { admitted <- g.admitIngest(ctx, "", 50) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-admitted:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
}

func TestGovernorTenantShares(t *testing.T) {
	g := testGovernor(Limits{
		MaxInFlightIngestBytes: 100,
		TenantShares:           map[string]int64{"a": 3, "b": 1}, // caps 75 / 25
	})
	if err := g.admitIngest(nil, "b", 20); err != nil {
		t.Fatalf("b within share: %v", err)
	}
	// b is over its 25-byte share even though the global budget has room.
	if err := g.admitIngest(nil, "b", 20); !errors.Is(err, ErrBusy) {
		t.Fatalf("b over share = %v, want ErrBusy", err)
	}
	if err := g.admitIngest(nil, "a", 70); err != nil {
		t.Fatalf("a within share: %v", err)
	}
	// Unknown tenants are bounded only by the global budget.
	if err := g.admitIngest(nil, "mystery", 10); err != nil {
		t.Fatalf("unknown tenant within global budget: %v", err)
	}
	g.releaseIngest("b", 20)
	g.releaseIngest("a", 70)
	g.releaseIngest("mystery", 10)
	if got := g.inflightBytes.Load(); got != 0 {
		t.Fatalf("in-flight after releases = %d, want 0", got)
	}
	if got := g.tenantInflight["a"].Load(); got != 0 {
		t.Fatalf("tenant a in-flight = %d, want 0", got)
	}
}

// TestGovernorShedOnBreach: negative-priority scans are shed while the SLO
// watchdog reports a breach; zero/positive priorities are unaffected.
func TestGovernorShedOnBreach(t *testing.T) {
	g := testGovernor(Limits{MaxConcurrentScans: 8, ShedScansOnBreach: true})

	if err := g.admitScan(nil, -1); err != nil {
		t.Fatalf("negative priority with healthy SLO: %v", err)
	}
	g.releaseScan()

	g.noteHealth(true)
	if err := g.admitScan(nil, -1); !errors.Is(err, ErrBusy) {
		t.Fatalf("negative priority during breach = %v, want ErrBusy", err)
	}
	if err := g.admitScan(nil, 0); err != nil {
		t.Fatalf("default priority during breach: %v", err)
	}
	g.releaseScan()
	g.noteHealth(false)
	if err := g.admitScan(nil, -1); err != nil {
		t.Fatalf("negative priority after recovery: %v", err)
	}
	g.releaseScan()
	if g.sheds.Load() != 1 {
		t.Fatalf("sheds = %d, want 1", g.sheds.Load())
	}
}

// TestGovernorAdmitAllocs: the admission fast path (admit + release, under
// and over budget) must not allocate — it runs once per batch and per scan.
func TestGovernorAdmitAllocs(t *testing.T) {
	g := testGovernor(Limits{
		MaxInFlightIngestBytes: 100,
		MaxConcurrentScans:     1,
		TenantShares:           map[string]int64{"a": 1},
	})
	allocs := testing.AllocsPerRun(200, func() {
		if g.admitIngest(nil, "a", 10) == nil {
			g.releaseIngest("a", 10)
		}
		_ = g.admitIngest(nil, "", 500) // over-budget reject path
		if g.admitScan(nil, 0) == nil {
			g.releaseScan()
		}
	})
	if allocs != 0 {
		t.Fatalf("admission fast path allocates %.1f per op, want 0", allocs)
	}
}

// --- store-level admission tests -----------------------------------------

// TestStoreScanAdmission: with MaxConcurrentScans 1, a scan parked inside
// its callback blocks a second scan, which fails ErrBusy at MaxWait 0 and is
// counted in GovernorStats.
func TestStoreScanAdmission(t *testing.T) {
	s := openTestStore(t, Options{Limits: &Limits{MaxConcurrentScans: 1}})
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]byte, 8)
	for i := range batch {
		batch[i] = genEvent(i, "PushEvent", "spark")
	}
	ingestAll(t, s, batch)

	inCb := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		_, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex},
			func(Record) bool {
				inCb <- struct{}{}
				<-release
				return false
			})
		scanDone <- err
	}()
	<-inCb

	if st := s.GovernorStats(); st.ActiveScans != 1 {
		t.Fatalf("ActiveScans = %d, want 1", st.ActiveScans)
	}
	_, err = s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex},
		func(Record) bool { return true })
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("second scan = %v, want ErrBusy", err)
	}
	close(release)
	if err := <-scanDone; err != nil {
		t.Fatalf("first scan: %v", err)
	}

	// The slot is free again.
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{},
		func(Record) bool { return true }); err != nil {
		t.Fatalf("scan after release: %v", err)
	}
	st := s.GovernorStats()
	if st.Rejects != 1 || st.ActiveScans != 0 {
		t.Fatalf("GovernorStats = %+v, want 1 reject, 0 active", st)
	}
}

// TestStoreIngestTenantAdmission wires TenantLabel through a real store: a
// tenant over its share fails ErrBusy while another tenant still ingests.
func TestStoreIngestTenantAdmission(t *testing.T) {
	tenant := "small"
	s := openTestStore(t, Options{
		TenantLabel: func() string { return tenant },
		Limits: &Limits{
			MaxInFlightIngestBytes: 1 << 20,
			// small gets ~1KB of the 1MB budget; big gets the rest.
			TenantShares: map[string]int64{"small": 1, "big": 1023},
		},
	})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	defer sess.Close()

	// A batch bigger than small's ~1KB share but far under the global
	// budget: refused for small, fine for big. (Oversized-relative-to-share
	// batches are admitted on an idle share, so pin the share first by
	// charging it directly through the governor.)
	pad := make([]byte, 600)
	for i := range pad {
		pad[i] = 'x'
	}
	batch := [][]byte{[]byte(`{"repo": {"name": "spark"}, "pad": "` + string(pad) + `"}`)}
	if err := s.gov.admitIngest(nil, "small", 600); err != nil {
		t.Fatalf("pinning small's share: %v", err)
	}
	_, err := sess.Ingest(batch)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("small over share = %v, want ErrBusy", err)
	}
	tenant = "big"
	if _, err := sess.Ingest(batch); err != nil {
		t.Fatalf("big tenant same batch: %v", err)
	}
	s.gov.releaseIngest("small", 600)
	tenant = "small"
	if _, err := sess.Ingest(batch); err != nil {
		t.Fatalf("small after release: %v", err)
	}
	if st := s.GovernorStats(); st.TenantInFlightBytes["small"] != 0 {
		t.Fatalf("small in-flight after drain = %d, want 0", st.TenantInFlightBytes["small"])
	}
}
