package fishstore

import (
	"encoding/binary"
	"fmt"

	"fishstore/internal/epoch"
	"fishstore/internal/expr"
	"fishstore/internal/hashtable"
	"fishstore/internal/psf"
	"fishstore/internal/record"
)

// BuildHistoricalIndex builds a subset index for PSF id over an *already
// ingested* log range [from, to) (Appendix A). FishStore never re-indexes
// in place; instead it appends small *indirect* index records to the tail —
// each carrying one key pointer plus the 8-byte address of the matching
// data record — and extends the PSF's indexed intervals to cover the range.
// Subsequent scans over [from, to) then use the hash chains and resolve the
// indirection transparently.
//
// The PSF must be registered (active or not). The call full-scans the range
// once, so its cost is one pass over [from, to).
func (s *Store) BuildHistoricalIndex(id psf.ID, from, to uint64) (int64, error) {
	def, ok := s.registry.Lookup(id)
	if !ok {
		return 0, fmt.Errorf("fishstore: unknown PSF id %d", id)
	}
	from, to = s.clampRange(from, to)
	if from >= to {
		return 0, nil
	}
	// Skip sub-ranges that are already indexed.
	plan := s.planScan(id, from, to, ScanAuto)

	psess, err := s.pf.NewSession(def.Fields)
	if err != nil {
		return 0, err
	}

	sessG := s.epoch.Acquire()
	defer sessG.Release()

	var built int64
	for _, seg := range plan {
		if seg.Indexed {
			continue
		}
		var appendErr error
		err := s.visitRange(nil, sessG, seg.From, seg.To, nil, nil, func(addr uint64, v record.View) bool {
			if v.Header().Indirect {
				return true // never index index records
			}
			payload := v.Payload()
			parsed, perr := psess.Parse(payload)
			if perr != nil {
				return true
			}
			val := def.Evaluate(parsed)
			if val.Kind == expr.KindMissing {
				return true
			}
			if err := s.appendIndirect(sessG, id, val, addr); err != nil {
				appendErr = err
				return false
			}
			built++
			return true
		})
		// An append failure must abort the build: marking the interval
		// covered with index records missing would silently drop matches
		// from every future chain-planned scan over this range.
		if err == nil {
			err = appendErr
		}
		if err != nil {
			return built, err
		}
		// The range is now covered: record it so scan planning uses chains.
		if err := s.registry.ExtendInterval(id, psf.Interval{From: seg.From, To: seg.To}); err != nil {
			return built, err
		}
	}
	return built, nil
}

// appendIndirect writes one indirect index record for (id, val) -> target.
func (s *Store) appendIndirect(g *epoch.Guard, id psf.ID, val expr.Value, target uint64) error {
	canonical := psf.CanonicalValue(val)
	var ps record.PointerSpec
	ps.PSFID = id
	if val.Kind == expr.KindBool {
		ps.Mode = record.ModeBool
		ps.BoolValue = val.Bool
	} else {
		ps.Mode = record.ModeValueRegion
		ps.ValOffset = 0
		ps.ValSize = len(canonical)
	}
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], target)
	spec := record.Spec{
		Payload:  payload[:],
		Pointers: []record.PointerSpec{ps},
		Indirect: true,
		Checksum: !s.opts.DisableRecordChecksums,
	}
	if ps.Mode == record.ModeValueRegion {
		spec.ValueRegion = canonical
	}
	alloc, err := s.log.Allocate(g, spec.SizeWords())
	if err != nil {
		return err
	}
	spec.Write(alloc.Words)
	view := record.View{Words: alloc.Words}
	wi := view.PointerWordIndex(0)
	var h uint64
	if def, ok := s.registry.Lookup(id); ok && def.ShardCount() > 1 {
		shards := def.ShardCount()
		h = psf.ShardHash(id, canonical, shardOf(alloc.Address, shards), shards)
	} else {
		h = hashtable.HashProperty(id, canonical)
	}
	if err := s.linkPointer(h, alloc.Address+uint64(wi)*8, &view.Words[wi]); err != nil {
		return err
	}
	view.SetVisible()
	return nil
}
