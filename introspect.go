package fishstore

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"fishstore/internal/hashtable"
	"fishstore/internal/introspect"
	"fishstore/internal/metrics"
	"fishstore/internal/pagecache"
	"fishstore/internal/psf"
	"fishstore/internal/record"
)

// This file is the store-level half of the deep introspection layer: the
// epoch-safe samplers that walk the subset hash index and the log, the PSF
// lifecycle view, the per-scan decision log, and the flight recorder
// accessors. Everything here reads live latch-free structures with the same
// discipline the scan path uses — atomic loads, epoch guards around
// in-memory access, protection dropped around device I/O — so sampling
// never blocks ingestion.

// registerIntrospection mounts the store's JSON introspection endpoints on
// the registry (served under /debug/fishstore/ by metrics.NewMux) and
// creates the scan decision log. Works with a disabled registry too:
// structural introspection is orthogonal to metric collection.
func (s *Store) registerIntrospection() {
	if s.opts.ScanDecisionLog > 0 {
		s.scanLog = introspect.NewRing[introspect.ScanDecision](s.opts.ScanDecisionLog)
	}
	reg := s.metrics.reg
	reg.RegisterDebug("index", func() any {
		// A fresh (capped) chain sample per request: the endpoint is the
		// interactive "what do my chains look like" view.
		if _, err := s.SampleChains(ChainSampleOptions{}); err != nil {
			return map[string]string{"error": err.Error()}
		}
		return s.IndexStats()
	})
	reg.RegisterDebug("psf", func() any { return s.PSFStatus() })
	reg.RegisterDebug("scan", func() any { return s.ScanDecisions() })
	reg.RegisterDebug("cache", func() any { return s.CacheStats() })
	reg.RegisterDebug("log", func() any {
		ls, err := s.LogComposition(LogSampleOptions{})
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return ls
	})
	if fr := s.metrics.flight; fr != nil {
		reg.RegisterDebug("flight", func() any { return fr.Snapshot() })
	}
	// Chrome trace-event JSON of the retained spans; load the response body
	// directly in Perfetto (ui.perfetto.dev). Valid (empty) with tracing off.
	reg.RegisterDebug("spans", func() any { return s.tracer.ChromeTrace() })
}

// IndexStats returns hash-table occupancy (live, from atomic loads) plus the
// most recent chain sample, if any (run SampleChains to refresh it).
func (s *Store) IndexStats() introspect.IndexSnapshot {
	oc := s.table.Occupancy()
	snap := introspect.IndexSnapshot{
		Buckets:          oc.Buckets,
		Entries:          oc.Buckets*7 + oc.OverflowCap*7,
		UsedEntries:      oc.UsedEntries,
		TentativeEntries: oc.TentativeEntries,
		OverflowUsed:     oc.OverflowUsed,
		OverflowCap:      oc.OverflowCap,
		BucketFill:       oc.BucketFill,
		TableBytes:       s.table.SizeBytes(),
		Chains:           s.lastChain.Load(),
	}
	if slots := oc.Buckets * 7; slots > 0 {
		snap.LoadFactor = float64(oc.UsedEntries) / float64(slots)
	}
	return snap
}

// ChainSampleOptions caps a chain sample's work.
type ChainSampleOptions struct {
	// MaxChains bounds how many hash chains are walked (default 1024);
	// chains beyond the cap are counted as skipped.
	MaxChains int
	// MaxLinksPerChain bounds the walk down any one chain (default 4096);
	// chains that hit it are counted as truncated.
	MaxLinksPerChain int
}

// SampleChains walks up to MaxChains hash chains under epoch protection,
// attributing each to its PSF via the chain's key pointers, and publishes a
// per-PSF chain-length histogram (§6.3: chain length is what turns index
// scans into random I/O). Adaptive prefetching is disabled for the walk so
// the sample never perturbs the prefetch gauges; device reads drop epoch
// protection exactly like scans do, so ingestion is never blocked.
func (s *Store) SampleChains(opts ChainSampleOptions) (*introspect.ChainSnapshot, error) {
	if opts.MaxChains <= 0 {
		opts.MaxChains = 1024
	}
	if opts.MaxLinksPerChain <= 0 {
		opts.MaxLinksPerChain = 4096
	}
	start := time.Now()

	// Collect chain heads first (atomic loads only), then walk outside the
	// Range callback so the table scan itself stays trivially short.
	var heads []uint64
	skipped := 0
	s.table.Range(func(_ uint64, _ hashtable.Entry, slot hashtable.Slot) bool {
		if len(heads) >= opts.MaxChains {
			skipped++
			return true
		}
		heads = append(heads, slot.Address())
		return true
	})

	cs := &introspect.ChainSnapshot{SampledAt: start, SkippedChains: skipped}
	floor := s.ChainFloor()
	head := s.log.HeadAddress()
	perPSF := make(map[psf.ID]*psfChainAgg)

	g := s.epoch.Acquire()
	defer g.Release()
	var st ScanStats
	for _, h := range heads {
		var links uint64
		var owner psf.ID
		truncated := false
		err := s.forEachChainLink(nil, g, h, floor, false, nil, &st,
			func(cur uint64, _ record.View, _ uint64, kp record.KeyPointer) bool {
				if links == 0 {
					owner = kp.PSFID
				}
				links++
				if cur >= head {
					cs.InMemLinks++
				} else {
					cs.OnDeviceLinks++
				}
				if links >= uint64(opts.MaxLinksPerChain) {
					truncated = true
					return false
				}
				return true
			})
		if err != nil {
			return nil, err
		}
		if links == 0 {
			continue
		}
		cs.Chains++
		cs.Links += int64(links)
		if truncated {
			cs.TruncatedChains++
		}
		agg := perPSF[owner]
		if agg == nil {
			agg = &psfChainAgg{}
			perPSF[owner] = agg
		}
		agg.hist.Observe(links)
	}

	for id, agg := range perPSF {
		pc := introspect.PSFChains{
			PSFID:   id,
			Chains:  int(agg.hist.Count()),
			Links:   agg.hist.Sum(),
			MaxLen:  agg.hist.Max(),
			MeanLen: agg.hist.Mean(),
			Lengths: agg.hist.Buckets(),
		}
		if def, ok := s.registry.Lookup(id); ok {
			pc.Name = def.Name
		}
		cs.PerPSF = append(cs.PerPSF, pc)
	}
	sortPSFChains(cs.PerPSF)
	cs.ElapsedSeconds = time.Since(start).Seconds()
	s.lastChain.Store(cs)
	return cs, nil
}

type psfChainAgg struct{ hist introspect.PowHist }

func sortPSFChains(pcs []introspect.PSFChains) {
	for i := 1; i < len(pcs); i++ {
		for j := i; j > 0 && pcs[j].PSFID < pcs[j-1].PSFID; j-- {
			pcs[j], pcs[j-1] = pcs[j-1], pcs[j]
		}
	}
}

// LogSampleOptions bounds a log composition walk.
type LogSampleOptions struct {
	// From and To delimit the walked range; zero means the logical begin
	// (after truncation) and the flushed-or-tail boundary respectively.
	From, To uint64
	// MaxBytes caps the walked volume (default 64MB); the walk stops early
	// and marks the snapshot truncated when it would exceed the cap.
	MaxBytes uint64
}

// LogComposition walks the log's headers — including fillers and
// invalidated records, which scans never surface — and reports the live vs
// invalidated vs filler byte composition of the range. In-memory pages are
// read with atomic loads; on-device pages are read with epoch protection
// dropped, the same discipline visitRange uses.
func (s *Store) LogComposition(opts LogSampleOptions) (*introspect.LogSnapshot, error) {
	from, to := s.clampRange(opts.From, opts.To)
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 64 << 20
	}
	ls := &introspect.LogSnapshot{SampledAt: time.Now(), From: from, To: to}
	ls.Degraded, ls.DegradedCause = s.Degraded()
	if from >= to {
		return ls, nil
	}
	if to-from > opts.MaxBytes {
		to = from + opts.MaxBytes
		ls.Truncated = true
	}

	g := s.epoch.Acquire()
	defer g.Release()

	pageSize := s.log.PageSize()
	for addr := from; addr < to; {
		pageStart := addr &^ (pageSize - 1)
		pageEnd := pageStart + pageSize
		limit := to
		if pageEnd < limit {
			limit = pageEnd
		}
		g.Refresh()

		var words []uint64
		if addr >= s.log.HeadAddress() {
			words = s.log.PageWordsFrom(addr)
		} else {
			// Immutable on-device data: read without epoch protection so a
			// pinned safe epoch never stalls page-frame recycling.
			n := int(pageEnd-addr) / 8
			g.Unprotect()
			w, err := s.log.ReadWordsFromDevice(addr, n)
			g.Protect()
			if err != nil {
				return nil, fmt.Errorf("fishstore: log sample read at %d: %w", addr, err)
			}
			words = w
		}
		walkAllHeaders(words, addr, limit, ls)
		addr = pageEnd
	}
	ls.WalkedBytes = uint64(ls.LiveBytes + ls.InvalidBytes + ls.FillerBytes)
	return ls, nil
}

// walkAllHeaders tallies every header in words (first word at baseAddr) into
// ls, stopping at limit or the unwritten tail.
func walkAllHeaders(words []uint64, baseAddr, limit uint64, ls *introspect.LogSnapshot) {
	off := 0
	for off < len(words) {
		hw := atomic.LoadUint64(&words[off])
		h := record.UnpackHeader(hw)
		if h.SizeWords == 0 {
			return // unwritten tail region
		}
		addr := baseAddr + uint64(off)*8
		if addr >= limit || off+h.SizeWords > len(words) {
			return
		}
		bytes := int64(h.SizeWords) * 8
		switch {
		case h.Filler:
			ls.Fillers++
			ls.FillerBytes += bytes
		case h.Invalid || !h.Visible:
			ls.Records++
			ls.InvalidRecords++
			ls.InvalidBytes += bytes
		default:
			ls.Records++
			ls.LiveRecords++
			ls.LiveBytes += bytes
			if h.Indirect {
				ls.IndirectRecs++
			}
			ls.KeyPointers += int64(h.NumPtrs)
		}
		off += h.SizeWords
	}
}

// PSFStatus returns the PSF lifecycle view: the Fig 7 registry state, and
// every PSF ever registered with its safe register/deregister boundary
// addresses (the coverage intervals of on-demand indexing).
func (s *Store) PSFStatus() psf.RegistryStatus { return s.registry.Status() }

// CacheSnapshot is the read-path cache view served at /debug/fishstore/cache:
// the page cache over immutable on-device log pages, the per-page PSF
// membership summaries built at flush time, and the hot-chain memoization.
// Disabled layers report Enabled=false with zeroed stats.
type CacheSnapshot struct {
	PageCache        pagecache.Stats `json:"page_cache"`
	PageCacheEnabled bool            `json:"page_cache_enabled"`
	Summaries        SummaryStats    `json:"page_summaries"`
	SummariesEnabled bool            `json:"page_summaries_enabled"`
	HotChains        HotChainStats   `json:"hot_chains"`
	HotChainsEnabled bool            `json:"hot_chains_enabled"`
}

// CacheStats returns a point-in-time snapshot of the read-path caches.
func (s *Store) CacheStats() CacheSnapshot {
	var cs CacheSnapshot
	if s.pcache != nil {
		cs.PageCacheEnabled = true
		cs.PageCache = s.pcache.Stats()
	}
	if s.summaries != nil {
		cs.SummariesEnabled = true
		cs.Summaries = s.summaries.stats()
	}
	if s.hotchain != nil {
		cs.HotChainsEnabled = true
		cs.HotChains = s.hotchain.stats()
	}
	return cs
}

// ScanDecisions returns the retained scan decisions, oldest first.
func (s *Store) ScanDecisions() introspect.ScanLog {
	if s.scanLog == nil {
		return introspect.ScanLog{}
	}
	return introspect.ScanLog{
		Capacity:  s.scanLog.Cap(),
		Total:     s.scanLog.Total(),
		Dropped:   s.scanLog.Dropped(),
		Decisions: s.scanLog.Snapshot(),
	}
}

// recordScanDecision captures one executed scan into the decision log:
// the segment plan split, the Φ cost-model inputs in force, and the
// observed work. Called from Scan's defer; one ring Put, no locks.
func (s *Store) recordScanDecision(id psf.ID, mode ScanMode, from, to uint64, st *ScanStats, elapsed time.Duration) {
	phi, profile := costModel(s.log)
	d := introspect.ScanDecision{
		Seq:                s.scanSeq.Add(1),
		Time:               time.Now(),
		Mode:               mode.String(),
		PSF:                id,
		From:               from,
		To:                 to,
		PhiBytes:           phi,
		BwSeqBytesPerSec:   profile.SeqBandwidth,
		RandLatencySeconds: profile.RandLatency.Seconds(),
		SyscallCostSeconds: profile.SyscallCost.Seconds(),
		Matched:            st.Matched,
		Visited:            st.Visited,
		IndexHops:          st.IndexHops,
		IOs:                st.IOs,
		ReadBytes:          st.ReadBytes,
		PrefetchHits:       st.PrefetchHits,
		PageCacheHits:      st.PageCacheHits,
		BloomSkips:         st.BloomSkippedPages,
		Stopped:            st.Stopped,
		ElapsedSeconds:     elapsed.Seconds(),
	}
	for _, seg := range st.Plan {
		d.Segments = append(d.Segments, introspect.ScanSegment{From: seg.From, To: seg.To, Indexed: seg.Indexed})
		if seg.Indexed {
			d.IndexedBytes += seg.To - seg.From
		} else {
			d.FullBytes += seg.To - seg.From
		}
	}
	if total := d.IndexedBytes + d.FullBytes; total > 0 {
		d.IndexedFraction = float64(d.IndexedBytes) / float64(total)
	}
	s.scanLog.Put(d)
}

// FlightEvents returns the flight recorder's retained trace events, oldest
// first (nil when the recorder is disabled).
func (s *Store) FlightEvents() []metrics.TraceEvent {
	if s.metrics.flight == nil {
		return nil
	}
	return s.metrics.flight.Events()
}

// DumpFlight writes the flight recorder's contents to w as JSON lines,
// oldest first. Safe to call from concurrent failure paths (dumps are
// serialized process-wide). No-op when the recorder is disabled.
func (s *Store) DumpFlight(w io.Writer) error {
	if s.metrics.flight == nil {
		return nil
	}
	return s.metrics.flight.DumpLocked(w)
}

// EpochInUse reports the store's live epoch guards (acquired and not yet
// released) and how many of them are currently pinning the safe epoch.
// Leak checks assert both return to zero once every session is closed and
// every scan — including cancelled ones — has returned.
func (s *Store) EpochInUse() (live, protected int) {
	return s.epoch.LiveGuards(), s.epoch.ProtectedSlots()
}
