package fishstore

import (
	"encoding/binary"

	"fishstore/internal/hlog"
	"fishstore/internal/metrics"
	"fishstore/internal/record"
	"fishstore/internal/storage"
	"fishstore/internal/trace"
	"fishstore/internal/wordio"
)

// chainReader reads hash-chain records from the storage device with
// adaptive prefetching (§7.2, Fig 9).
//
// Chains run from high to low addresses, so when the reader observes
// locality — the gap between consecutive chain records is below the
// threshold τ — it speculatively reads a *backward* window ending at the
// current position, hoping it covers the next several chain records. The
// threshold comes from the paper's cost model:
//
//	Φ = (cost_syscall + latency_rand) × throughput_seq
//	τ = Φ + avg_record_size
//
// i.e., Φ is the number of sequential bytes whose transfer time equals the
// fixed cost of one random I/O; reading up to that many extra bytes to save
// one random I/O is a win. Speculation levels grow exponentially from the
// average record size up to a full device queue, and collapse back to
// nothing when locality disappears.
type chainReader struct {
	log    *hlog.Log
	useAP  bool
	tau    uint64
	minWin int
	maxWin int
	window int // current speculation window (0 = no speculation)

	buf      []byte
	bufStart uint64
	bufEnd   uint64

	lastBase  uint64 // base address of the previous (higher) chain record
	avgRec    float64
	recsSeen  int64
	ios       int64
	bytesRead int64
	hits      int64 // fetches served from the speculation buffer

	met *storeMetrics
	sp  *trace.Span // scan span; each device read becomes a scan.io child
}

// costModel returns the Φ threshold and the storage profile behind it: the
// number of sequential bytes whose transfer time equals one random I/O's
// fixed cost, computed from the device's profile (or the default SSD profile
// when the device doesn't report one). Shared by the adaptive prefetcher,
// the cost-model gauges, and the per-scan decision log.
func costModel(log *hlog.Log) (phi uint64, profile storage.Profile) {
	profile = storage.DefaultSSDProfile()
	if p, ok := storage.Unwrap(log.Device()).(storage.Profiler); ok {
		profile = p.Profile()
	}
	phi = uint64((profile.SyscallCost.Seconds() + profile.RandLatency.Seconds()) * profile.SeqBandwidth)
	return phi, profile
}

func newChainReader(log *hlog.Log, useAP bool, met *storeMetrics, sp *trace.Span) *chainReader {
	phi, profile := costModel(log)
	cr := &chainReader{
		log:    log,
		useAP:  useAP,
		minWin: 4096,
		maxWin: profile.QueueBytes,
		avgRec: 1024,
		met:    met,
		sp:     sp,
	}
	cr.tau = phi
	if cr.maxWin < cr.minWin {
		cr.maxWin = cr.minWin
	}
	return cr
}

// record reads the record containing the key pointer at kptAddr and returns
// its view and base address.
func (cr *chainReader) record(kptAddr uint64) (record.View, uint64, error) {
	// 1. The key pointer's first word tells us where the record starts.
	kw, err := cr.fetch(kptAddr, 16)
	if err != nil {
		return record.View{}, 0, err
	}
	wordA := binary.LittleEndian.Uint64(kw)
	offWords := int(wordA >> 50)
	base := kptAddr - uint64(offWords)*8

	// 2. The header tells us the record size.
	hb, err := cr.fetch(base, 8)
	if err != nil {
		return record.View{}, 0, err
	}
	h := record.UnpackHeader(binary.LittleEndian.Uint64(hb))
	if h.SizeWords == 0 {
		return record.View{}, 0, errEmptyHeader(base)
	}

	// 3. Fetch the whole record.
	rb, err := cr.fetch(base, h.SizeWords*8)
	if err != nil {
		return record.View{}, 0, err
	}
	words := make([]uint64, h.SizeWords)
	wordio.BytesToWords(words, rb)

	cr.adapt(base, h.SizeWords*8)
	return record.View{Words: words}, base, nil
}

// adapt updates the locality estimate after reading the record at base.
func (cr *chainReader) adapt(base uint64, size int) {
	cr.recsSeen++
	cr.avgRec += (float64(size) - cr.avgRec) / float64(cr.recsSeen)
	if cr.lastBase != 0 && cr.useAP {
		// Gap between this record's end and the previous chain record.
		end := base + uint64(size)
		var gap uint64
		if cr.lastBase > end {
			gap = cr.lastBase - end
		}
		// τ includes the average record length: the record's own bytes are
		// not wasted bandwidth.
		threshold := cr.tau + uint64(cr.avgRec)
		prev := cr.window
		if gap <= threshold {
			// Locality: speculate (more).
			switch {
			case cr.window == 0:
				cr.window = cr.minWin
				if int(cr.avgRec*4) > cr.window {
					cr.window = int(cr.avgRec * 4)
				}
			default:
				cr.window *= 4
			}
			if cr.window > cr.maxWin {
				cr.window = cr.maxWin
			}
		} else {
			cr.window = 0 // fall back to exact random I/Os
		}
		if m := cr.met; m != nil && cr.window != prev {
			m.prefetchWindow.Set(int64(cr.window))
			if cr.window > prev {
				m.prefetchGrows.Inc()
				m.reg.Trace("prefetch.grow",
					metrics.F("window", cr.window), metrics.F("gap", gap))
			} else {
				m.prefetchCollapse.Inc()
				m.reg.Trace("prefetch.collapse", metrics.F("gap", gap))
			}
		}
	}
	cr.lastBase = base
}

// fetch returns n bytes at addr, serving from the speculation buffer when
// possible.
func (cr *chainReader) fetch(addr uint64, n int) ([]byte, error) {
	if addr >= cr.bufStart && addr+uint64(n) <= cr.bufEnd {
		cr.hits++
		if cr.met != nil {
			cr.met.prefetchHits.Inc()
		}
		off := addr - cr.bufStart
		return cr.buf[off : off+uint64(n)], nil
	}
	if cr.met != nil {
		cr.met.prefetchMisses.Inc()
	}
	start, end := addr, addr+uint64(n)
	if cr.useAP && cr.window > int(end-start) {
		// Backward speculative window ending at our read's end.
		w := uint64(cr.window)
		if end > w {
			start = end - w
		} else {
			start = 0
		}
		if start < hlog.BeginAddress && end > hlog.BeginAddress {
			start = 0 // reading the reserved prefix is harmless
		}
	}
	size := int(end - start)
	if cap(cr.buf) < size {
		cr.buf = make([]byte, size)
	}
	cr.buf = cr.buf[:size]
	var iosp *trace.Span
	if cr.sp != nil {
		iosp = cr.sp.Child("scan.io")
		iosp.SetUint("addr", start)
		iosp.SetInt("bytes", int64(size))
		iosp.SetInt("window", int64(cr.window))
	}
	err := cr.log.ReadBytesFromDevice(start, cr.buf)
	iosp.End()
	if err != nil {
		return nil, err
	}
	cr.ios++
	cr.bytesRead += int64(size)
	cr.bufStart, cr.bufEnd = start, end
	off := addr - start
	return cr.buf[off : off+uint64(n)], nil
}

type errEmptyHeader uint64

func (e errEmptyHeader) Error() string {
	return "fishstore: empty record header on chain"
}
