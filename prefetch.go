package fishstore

import (
	"context"
	"encoding/binary"
	"sync"
	"time"

	"fishstore/internal/hlog"
	"fishstore/internal/metrics"
	"fishstore/internal/pagecache"
	"fishstore/internal/record"
	"fishstore/internal/storage"
	"fishstore/internal/trace"
	"fishstore/internal/wordio"
)

// chainReader reads hash-chain records from the storage device with
// adaptive prefetching (§7.2, Fig 9).
//
// Chains run from high to low addresses, so when the reader observes
// locality — the gap between consecutive chain records is below the
// threshold τ — it speculatively reads a *backward* window ending at the
// current position, hoping it covers the next several chain records. The
// threshold comes from the paper's cost model:
//
//	Φ = (cost_syscall + latency_rand) × throughput_seq
//	τ = Φ + avg_record_size
//
// i.e., Φ is the number of sequential bytes whose transfer time equals the
// fixed cost of one random I/O; reading up to that many extra bytes to save
// one random I/O is a win. Speculation levels grow exponentially from the
// average record size up to a full device queue, and collapse back to
// nothing when locality disappears.
//
// The profile's Φ is trusted only as long as the device behaves like the
// profile claims. The reader times its own device reads and keeps an EWMA of
// the observed fixed cost per I/O; when that drops below the profile's
// random-latency floor (a RAM-backed device, a simulator whose virtual clock
// doesn't sleep, a page already in the OS cache), τ and the speculation cap
// are recomputed from the observed cost. Without this clamp a fast device
// with a pessimistic profile turns the prefetcher into a pessimization:
// multi-megabyte windows that cost far more than the cheap random reads they
// replace.
//
// When a page cache is attached, device resolution happens at page
// granularity through it instead of via byte-window speculation: a chain hop
// either hits a cached page (no I/O at all) or fills one page whose records
// every later hop and scan can alias zero-copy.
type chainReader struct {
	log     *hlog.Log
	ctx     context.Context // nil = never cancelled; checked by device reads
	useAP   bool
	cache   *pagecache.Cache // nil = raw device reads (baseline, verifier, profiler)
	tau     uint64
	minWin  int
	maxWin  int
	window  int // current speculation window (0 = no speculation)
	profile storage.Profile

	buf      []byte
	bufStart uint64
	bufEnd   uint64

	lastBase  uint64 // base address of the previous (higher) chain record
	avgRec    float64
	recsSeen  int64
	ios       int64
	bytesRead int64
	hits      int64 // fetches served without a device read (buffer or cache)
	cacheHits int64 // subset of hits served by the shared page cache

	// Observed fixed cost per device I/O (seconds, EWMA): elapsed wall time
	// minus the transfer time the profile predicts for the bytes moved.
	obsFixed   float64
	obsSamples int64

	met *storeMetrics
	sp  *trace.Span // scan span; each device read becomes a scan.io child
}

const (
	// obsMinSamples is how many device reads the reader times before it
	// trusts the observed latency over the profile.
	obsMinSamples = 4
	// obsAlpha is the EWMA weight of the newest latency sample.
	obsAlpha = 0.25
)

// costModel returns the Φ threshold and the storage profile behind it: the
// number of sequential bytes whose transfer time equals one random I/O's
// fixed cost, computed from the device's profile (or the default SSD profile
// when the device doesn't report one). Shared by the adaptive prefetcher,
// the cost-model gauges, and the per-scan decision log.
func costModel(log *hlog.Log) (phi uint64, profile storage.Profile) {
	profile = storage.DefaultSSDProfile()
	if p, ok := storage.Unwrap(log.Device()).(storage.Profiler); ok {
		profile = p.Profile()
	}
	phi = uint64((profile.SyscallCost.Seconds() + profile.RandLatency.Seconds()) * profile.SeqBandwidth)
	return phi, profile
}

func newChainReader(ctx context.Context, log *hlog.Log, useAP bool, cache *pagecache.Cache, met *storeMetrics, sp *trace.Span) *chainReader {
	phi, profile := costModel(log)
	cr := &chainReader{
		log:     log,
		ctx:     ctx,
		useAP:   useAP,
		cache:   cache,
		minWin:  4096,
		maxWin:  profile.QueueBytes,
		profile: profile,
		avgRec:  1024,
		met:     met,
		sp:      sp,
	}
	cr.tau = phi
	if cr.maxWin < cr.minWin {
		cr.maxWin = cr.minWin
	}
	return cr
}

// specBufPool recycles speculation buffers across scans. Windows can grow to
// a full device queue (maxWin); without pooling every cold scan re-allocates
// that much and drops it on the floor when the chainReader dies.
var specBufPool sync.Pool // stores *[]byte

// ensureBuf makes cr.buf at least size bytes, drawing from the pool before
// allocating. Capacity is rounded up to a whole number of minWin units so
// recycled buffers fit later windows.
func (cr *chainReader) ensureBuf(size int) {
	if cap(cr.buf) >= size {
		cr.buf = cr.buf[:size]
		return
	}
	if cr.buf != nil {
		b := cr.buf[:0]
		specBufPool.Put(&b)
		cr.buf = nil
	}
	if p, ok := specBufPool.Get().(*[]byte); ok && cap(*p) >= size {
		cr.buf = (*p)[:size]
		return
	}
	rounded := (size + cr.minWin - 1) / cr.minWin * cr.minWin
	cr.buf = make([]byte, size, rounded)
}

// release returns the speculation buffer to the pool. The chainReader must
// not be used afterwards; owners call it once the chain walk finishes.
func (cr *chainReader) release() {
	if cr == nil || cr.buf == nil {
		return
	}
	b := cr.buf[:0]
	specBufPool.Put(&b)
	cr.buf = nil
	cr.bufStart, cr.bufEnd = 0, 0
}

// observe folds one timed device read into the fixed-cost estimate. The
// profile's sequential bandwidth converts bytes moved into expected transfer
// time; whatever elapsed beyond that is the I/O's fixed cost (seek + syscall).
func (cr *chainReader) observe(elapsed time.Duration, size int) {
	fixed := elapsed.Seconds() - float64(size)/cr.profile.SeqBandwidth
	if fixed < 0 {
		fixed = 0
	}
	if cr.obsSamples == 0 {
		cr.obsFixed = fixed
	} else {
		cr.obsFixed += (fixed - cr.obsFixed) * obsAlpha
	}
	cr.obsSamples++
}

// effTau returns the locality threshold Φ in effect: the profile's Φ, or one
// recomputed from observed latency when the device demonstrably answers
// random reads faster than the profile's random-latency floor.
func (cr *chainReader) effTau() uint64 {
	if cr.obsSamples >= obsMinSamples && cr.obsFixed < cr.profile.RandLatency.Seconds() {
		return uint64(cr.obsFixed * cr.profile.SeqBandwidth)
	}
	return cr.tau
}

// effMaxWin bounds the speculation window to what the effective Φ justifies:
// a handful of random-I/O-equivalents, never more than the device queue.
func (cr *chainReader) effMaxWin() int {
	tau := cr.effTau()
	if tau == cr.tau {
		return cr.maxWin
	}
	w := int(4 * tau)
	if w < cr.minWin {
		w = cr.minWin
	}
	if w > cr.maxWin {
		w = cr.maxWin
	}
	return w
}

// record reads the record containing the key pointer at kptAddr and returns
// its view and base address.
func (cr *chainReader) record(kptAddr uint64) (record.View, uint64, error) {
	if cr.cache != nil {
		return cr.recordViaCache(kptAddr)
	}

	// 1. The key pointer's first word tells us where the record starts.
	kw, err := cr.fetch(kptAddr, 16)
	if err != nil {
		return record.View{}, 0, err
	}
	wordA := binary.LittleEndian.Uint64(kw)
	offWords := int(wordA >> 50)
	base := kptAddr - uint64(offWords)*8

	// 2. The header tells us the record size.
	hb, err := cr.fetch(base, 8)
	if err != nil {
		return record.View{}, 0, err
	}
	h := record.UnpackHeader(binary.LittleEndian.Uint64(hb))
	if h.SizeWords == 0 {
		return record.View{}, 0, errEmptyHeader(base)
	}

	// 3. Fetch the whole record.
	rb, err := cr.fetch(base, h.SizeWords*8)
	if err != nil {
		return record.View{}, 0, err
	}
	words := make([]uint64, h.SizeWords)
	wordio.BytesToWords(words, rb)

	cr.adapt(base, h.SizeWords*8)
	return record.View{Words: words}, base, nil
}

// recordViaCache resolves the record through the shared page cache: records
// never straddle pages, so the key pointer, header, and payload all live in
// one cached page and the returned view aliases it with zero copies.
func (cr *chainReader) recordViaCache(kptAddr uint64) (record.View, uint64, error) {
	pw, err := cr.pageWords(cr.log.PageOf(kptAddr))
	if err != nil {
		return record.View{}, 0, err
	}
	kOff := cr.log.OffsetOf(kptAddr) / 8
	wordA := pw[kOff]
	offWords := uint64(wordA >> 50)
	base := kptAddr - offWords*8
	if offWords > kOff {
		// Records never straddle pages; an offset pointing before the page
		// start means the chain word is garbage.
		return record.View{}, 0, errEmptyHeader(base)
	}
	bOff := kOff - offWords
	h := record.UnpackHeader(pw[bOff])
	if h.SizeWords == 0 {
		return record.View{}, 0, errEmptyHeader(base)
	}
	if bOff+uint64(h.SizeWords) > uint64(len(pw)) {
		return record.View{}, 0, errEmptyHeader(base)
	}
	view := record.View{Words: pw[bOff : bOff+uint64(h.SizeWords)]}
	cr.adapt(base, h.SizeWords*8)
	return view, base, nil
}

// pageWords returns the on-device page through the cache, filling it with a
// single timed page read on a miss. Concurrent chain walkers missing on the
// same page share one fill.
func (cr *chainReader) pageWords(page uint64) ([]uint64, error) {
	if w := cr.cache.Get(page); w != nil {
		cr.hits++
		cr.cacheHits++
		if cr.met != nil {
			cr.met.prefetchHits.Inc()
		}
		return w, nil
	}
	pageSize := int(cr.log.PageSize())
	w, shared, err := cr.cache.GetOrLoad(page, func() ([]uint64, error) {
		var iosp *trace.Span
		if cr.sp != nil {
			iosp = cr.sp.Child("scan.io")
			iosp.SetUint("addr", page*uint64(pageSize))
			iosp.SetInt("bytes", int64(pageSize))
			iosp.SetInt("window", int64(cr.window))
		}
		start := time.Now()
		words, err := cr.log.ReadWordsFromDeviceCtx(cr.ctx, page*uint64(pageSize), pageSize/8)
		iosp.End()
		if err != nil {
			return nil, err
		}
		cr.observe(time.Since(start), pageSize)
		cr.ios++
		cr.bytesRead += int64(pageSize)
		return words, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		cr.hits++
		cr.cacheHits++
		if cr.met != nil {
			cr.met.prefetchHits.Inc()
		}
	} else if cr.met != nil {
		cr.met.prefetchMisses.Inc()
	}
	return w, nil
}

// adapt updates the locality estimate after reading the record at base.
func (cr *chainReader) adapt(base uint64, size int) {
	cr.recsSeen++
	cr.avgRec += (float64(size) - cr.avgRec) / float64(cr.recsSeen)
	if cr.lastBase != 0 && cr.useAP {
		// Gap between this record's end and the previous chain record.
		end := base + uint64(size)
		var gap uint64
		if cr.lastBase > end {
			gap = cr.lastBase - end
		}
		// τ includes the average record length: the record's own bytes are
		// not wasted bandwidth.
		threshold := cr.effTau() + uint64(cr.avgRec)
		prev := cr.window
		if gap <= threshold {
			// Locality: speculate (more).
			switch {
			case cr.window == 0:
				cr.window = cr.minWin
				if int(cr.avgRec*4) > cr.window {
					cr.window = int(cr.avgRec * 4)
				}
			default:
				cr.window *= 4
			}
			if max := cr.effMaxWin(); cr.window > max {
				cr.window = max
			}
		} else {
			cr.window = 0 // fall back to exact random I/Os
		}
		if m := cr.met; m != nil && cr.window != prev {
			m.prefetchWindow.Set(int64(cr.window))
			if cr.window > prev {
				m.prefetchGrows.Inc()
				m.reg.Trace("prefetch.grow",
					metrics.FInt("window", int64(cr.window)), metrics.FUint("gap", gap))
			} else {
				m.prefetchCollapse.Inc()
				m.reg.Trace("prefetch.collapse", metrics.FUint("gap", gap))
			}
		}
	}
	cr.lastBase = base
}

// fetch returns n bytes at addr, serving from the speculation buffer when
// possible.
func (cr *chainReader) fetch(addr uint64, n int) ([]byte, error) {
	if addr >= cr.bufStart && addr+uint64(n) <= cr.bufEnd {
		cr.hits++
		if cr.met != nil {
			cr.met.prefetchHits.Inc()
		}
		off := addr - cr.bufStart
		return cr.buf[off : off+uint64(n)], nil
	}
	if cr.met != nil {
		cr.met.prefetchMisses.Inc()
	}
	start, end := addr, addr+uint64(n)
	if win := cr.window; cr.useAP && win > int(end-start) {
		if max := cr.effMaxWin(); win > max {
			win = max // observed latency dropped below the profile floor
		}
		// Backward speculative window ending at our read's end.
		w := uint64(win)
		if end > w {
			start = end - w
		} else {
			start = 0
		}
		if start < hlog.BeginAddress && end > hlog.BeginAddress {
			start = 0 // reading the reserved prefix is harmless
		}
	}
	size := int(end - start)
	cr.ensureBuf(size)
	var iosp *trace.Span
	if cr.sp != nil {
		iosp = cr.sp.Child("scan.io")
		iosp.SetUint("addr", start)
		iosp.SetInt("bytes", int64(size))
		iosp.SetInt("window", int64(cr.window))
	}
	t0 := time.Now()
	err := cr.log.ReadBytesFromDeviceCtx(cr.ctx, start, cr.buf)
	iosp.End()
	if err != nil {
		return nil, err
	}
	cr.observe(time.Since(t0), size)
	cr.ios++
	cr.bytesRead += int64(size)
	cr.bufStart, cr.bufEnd = start, end
	off := addr - start
	return cr.buf[off : off+uint64(n)], nil
}

type errEmptyHeader uint64

func (e errEmptyHeader) Error() string {
	return "fishstore: empty record header on chain"
}
