package fishstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"fishstore/internal/metrics"
	"fishstore/internal/psf"
	"fishstore/internal/trace"
)

func openTracedStore(t testing.TB, opts Options) (*Store, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{CaptureAllocs: false})
	opts.Tracer = tr
	return openTestStore(t, opts), tr
}

// spanIndex maps span IDs to their data for tree assertions.
func spanIndex(spans []trace.SpanData) map[uint64]trace.SpanData {
	byID := make(map[uint64]trace.SpanData, len(spans))
	for _, d := range spans {
		byID[d.SpanID] = d
	}
	return byID
}

// childrenOf returns the spans whose parent is the given span, in finish order.
func childrenOf(spans []trace.SpanData, parent trace.SpanData) []trace.SpanData {
	var out []trace.SpanData
	for _, d := range spans {
		if d.ParentID == parent.SpanID && d.TraceID == parent.TraceID {
			out = append(out, d)
		}
	}
	return out
}

func findRoot(t *testing.T, spans []trace.SpanData, name string) trace.SpanData {
	t.Helper()
	for _, d := range spans {
		if d.Name == name && d.Root() {
			return d
		}
	}
	t.Fatalf("no root span %q in %d spans", name, len(spans))
	return trace.SpanData{}
}

// TestIngestBatchSpanTree is the ingest half of the acceptance criterion: a
// single ingest batch produces a well-formed span tree covering the paper's
// ingestion phases — parse, PSF evaluation, append, index update, and
// visibility — all parented under one ingest.batch root.
func TestIngestBatchSpanTree(t *testing.T) {
	s, tr := openTracedStore(t, Options{})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	var batch [][]byte
	for i := 0; i < 8; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)

	spans := tr.Spans()
	root := findRoot(t, spans, "ingest.batch")
	if got := root.Attr("records"); got != int64(8) {
		t.Errorf("ingest.batch records attr = %v, want 8", got)
	}
	phase := map[string]int{}
	for _, c := range childrenOf(spans, root) {
		phase[c.Name]++
		if c.Start < root.Start || c.Start+c.Duration > root.Start+root.Duration {
			t.Errorf("child %s [%v,%v] outside parent window [%v,%v]",
				c.Name, c.Start, c.Start+c.Duration, root.Start, root.Start+root.Duration)
		}
	}
	for _, want := range []string{"ingest.parse", "ingest.psf_eval", "ingest.append", "ingest.index", "ingest.visibility"} {
		if phase[want] != 8 {
			t.Errorf("phase %s spans = %d, want one per record (8); have %v", want, phase[want], phase)
		}
	}
}

// TestAdaptiveScanSpanTree is the scan half of the acceptance criterion: a
// mixed-coverage adaptive scan produces a span tree with the plan decision
// (carrying the Φ cost-model inputs) and one child per executed segment —
// chain walks for indexed intervals, full-scan sweeps for the gaps.
func TestAdaptiveScanSpanTree(t *testing.T) {
	s, tr := openTracedStore(t, Options{})
	// register -> ingest -> deregister -> ingest -> re-register -> ingest
	// leaves the second registration with an index gap, so the adaptive
	// planner emits both segment kinds.
	sess := s.NewSession()
	id1, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	sess.Ingest([][]byte{genEvent(1, "PushEvent", "spark")})
	s.DeregisterPSF(id1)
	sess.Ingest([][]byte{genEvent(2, "PushEvent", "spark")})
	id2, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	sess.Ingest([][]byte{genEvent(3, "PushEvent", "spark")})
	sess.Close()
	tr.Reset()

	var got int
	if _, err := s.Scan(PropertyString(id2, "spark"), ScanOptions{}, func(Record) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("matched %d, want 3", got)
	}

	spans := tr.Spans()
	root := findRoot(t, spans, "scan")
	if root.Attr("matched") != int64(3) {
		t.Errorf("scan matched attr = %v, want 3", root.Attr("matched"))
	}
	kinds := map[string]int{}
	for _, c := range childrenOf(spans, root) {
		kinds[c.Name]++
	}
	if kinds["scan.plan"] != 1 {
		t.Errorf("scan.plan spans = %d, want 1 (%v)", kinds["scan.plan"], kinds)
	}
	if kinds["scan.segment.index"] < 1 || kinds["scan.segment.full"] < 1 {
		t.Errorf("mixed plan should execute both segment kinds, got %v", kinds)
	}
	for _, d := range spans {
		if d.Name == "scan.plan" {
			if d.Attr("phi_bytes") == nil || d.Attr("bw_seq_bytes_per_sec") == nil {
				t.Errorf("scan.plan missing Φ cost-model attrs: %+v", d.Attrs)
			}
		}
	}
}

// TestChromeExportNestingAndMonotonicity feeds real store spans through the
// Chrome exporter and checks what the acceptance criterion asks of the JSON:
// it parses, events are sorted by monotonically non-decreasing timestamp,
// and every child event nests inside its parent's [ts, ts+dur] window.
func TestChromeExportNestingAndMonotonicity(t *testing.T) {
	s, tr := openTracedStore(t, Options{})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	var batch [][]byte
	for i := 0; i < 16; i++ {
		batch = append(batch, genEvent(i, "PushEvent", "spark"))
	}
	ingestAll(t, s, batch)
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool { return true }); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var ct trace.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	byID := map[uint64]trace.ChromeEvent{}
	prevTs := -1.0
	for _, e := range ct.TraceEvents {
		if e.Ts < prevTs {
			t.Fatalf("timestamps not monotonic: %f after %f", e.Ts, prevTs)
		}
		prevTs = e.Ts
		if e.Ph != "X" || e.Cat != "fishstore" {
			t.Fatalf("unexpected event envelope: %+v", e)
		}
		byID[asUint(t, e.Args["span_id"])] = e
	}
	const slack = 0.002 // float µs rounding
	for _, e := range ct.TraceEvents {
		pid := asUint(t, e.Args["parent_id"])
		if pid == 0 {
			continue
		}
		p, ok := byID[pid]
		if !ok {
			t.Fatalf("event %s has parent %d outside the export", e.Name, pid)
		}
		if p.Tid != e.Tid {
			t.Errorf("child %s on tid %d, parent %s on tid %d", e.Name, e.Tid, p.Name, p.Tid)
		}
		if e.Ts+slack < p.Ts || e.Ts+e.Dur > p.Ts+p.Dur+slack {
			t.Errorf("child %s [%f,%f] not nested in parent %s [%f,%f]",
				e.Name, e.Ts, e.Ts+e.Dur, p.Name, p.Ts, p.Ts+p.Dur)
		}
	}
}

// asUint normalizes the json round-trip of span IDs (float64 after
// Unmarshal into any, uint64 when read directly).
func asUint(t *testing.T, v any) uint64 {
	t.Helper()
	switch n := v.(type) {
	case float64:
		return uint64(n)
	case uint64:
		return n
	case json.Number:
		u, _ := n.Int64()
		return uint64(u)
	}
	t.Fatalf("unexpected id type %T", v)
	return 0
}

// TestSpanTeeIntoFlightRecorder checks root spans surface in the existing
// metrics trace pipeline in End order, so the crash flight recorder keeps a
// control-plane timeline of traced operations.
func TestSpanTeeIntoFlightRecorder(t *testing.T) {
	reg := metrics.NewRegistry()
	s, tr := openTracedStore(t, Options{Metrics: reg})
	id, _, _ := s.RegisterPSF(psf.Projection("repo.name"))
	ingestAll(t, s, [][]byte{genEvent(1, "PushEvent", "spark")})
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool { return true }); err != nil {
		t.Fatal(err)
	}
	_ = tr

	var names []string
	for _, e := range s.FlightEvents() {
		if strings.HasPrefix(e.Name, "span.") {
			names = append(names, e.Name)
		}
	}
	// Ingest ended before the scan started, so the tee must preserve that
	// order; per-record phase children never reach the flight recorder.
	wantOrder := []string{"span.ingest.batch", "span.scan"}
	j := 0
	for _, n := range names {
		if j < len(wantOrder) && n == wantOrder[j] {
			j++
		}
		if strings.Contains(n, "ingest.parse") || strings.Contains(n, "scan.plan") {
			t.Errorf("child span %s leaked into the flight recorder", n)
		}
	}
	if j != len(wantOrder) {
		t.Fatalf("flight recorder span events = %v, want subsequence %v", names, wantOrder)
	}
	for _, e := range s.FlightEvents() {
		if e.Name == "span.ingest.batch" {
			keys := map[string]bool{}
			for _, f := range e.Fields {
				keys[f.Key] = true
			}
			if !keys["trace_id"] || !keys["duration_ns"] {
				t.Errorf("span tee event missing fields: %+v", e.Fields)
			}
		}
	}
}

// TestConcurrentIngestSpanIntegrity hammers several ingest sessions in
// parallel (run under -race in CI) and verifies every finished span links to
// a parent inside its own trace — no cross-trace or dangling parents.
func TestConcurrentIngestSpanIntegrity(t *testing.T) {
	s, tr := openTracedStore(t, Options{MemPages: 8})
	if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < 16; i++ {
				batch := [][]byte{genEvent(w*1000+i, "PushEvent", fmt.Sprintf("repo-%d", w))}
				if _, err := sess.Ingest(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	spans := tr.Spans()
	byID := spanIndex(spans)
	roots := 0
	for _, d := range spans {
		if d.Root() {
			if d.Name == "ingest.batch" {
				roots++
			}
			continue
		}
		p, ok := byID[d.ParentID]
		if !ok {
			// The ring may have evicted the parent; only fail when it was
			// never finished at all.
			if tr.Dropped() == 0 {
				t.Errorf("span %s has unknown parent %d", d.Name, d.ParentID)
			}
			continue
		}
		if p.TraceID != d.TraceID {
			t.Errorf("span %s trace %d parented across traces to %s trace %d",
				d.Name, d.TraceID, p.Name, p.TraceID)
		}
	}
	if roots != workers*16 {
		t.Errorf("root spans = %d, want %d (one per batch)", roots, workers*16)
	}
}

// TestSamplingDeterminismThroughStore checks the 1-in-N sampler holds at the
// store level: with SampleEvery=4, exactly every 4th root operation (by root
// sequence) is traced, and reopening with the same seed reproduces the same
// selection.
func TestSamplingDeterminismThroughStore(t *testing.T) {
	pick := func() []uint64 {
		tr := trace.New(trace.Options{SampleEvery: 4, Seed: 42})
		s := openTestStore(t, Options{Tracer: tr})
		if _, _, err := s.RegisterPSF(psf.Projection("repo.name")); err != nil {
			t.Fatal(err)
		}
		sess := s.NewSession()
		defer sess.Close()
		for i := 0; i < 64; i++ {
			if _, err := sess.Ingest([][]byte{genEvent(i, "PushEvent", "spark")}); err != nil {
				t.Fatal(err)
			}
		}
		var ids []uint64
		for _, d := range tr.Spans() {
			if d.Root() && d.Name == "ingest.batch" {
				ids = append(ids, d.TraceID)
			}
		}
		return ids
	}
	a, b := pick(), pick()
	if len(a) == 0 || len(a) > 64/2 {
		t.Fatalf("sampled %d of 64 batches at 1-in-4", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed sampled %d then %d roots", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// TestDefaultProfileLabels pins the process-wide ProfileLabels default:
// stores opened while it is on get goroutine labels without the option
// plumbed through (the fishbench -cpuprofile path).
func TestDefaultProfileLabels(t *testing.T) {
	SetDefaultProfileLabels(true)
	defer SetDefaultProfileLabels(false)
	s := openTestStore(t, Options{PageBits: 16, MemPages: 8})
	defer s.Close()
	if s.plabels == nil {
		t.Fatal("SetDefaultProfileLabels(true) did not label a store opened without Options.ProfileLabels")
	}
	SetDefaultProfileLabels(false)
	s2 := openTestStore(t, Options{PageBits: 16, MemPages: 8})
	defer s2.Close()
	if s2.plabels != nil {
		t.Fatal("store opened after SetDefaultProfileLabels(false) still labeled")
	}
}
