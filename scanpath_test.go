package fishstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fishstore/internal/psf"
	"fishstore/internal/storage"
)

// testChainReader builds a chainReader detached from any log, with the
// default SSD profile, for exercising the adaptation logic directly.
func testChainReader() *chainReader {
	profile := storage.DefaultSSDProfile()
	phi := uint64((profile.SyscallCost.Seconds() + profile.RandLatency.Seconds()) * profile.SeqBandwidth)
	return &chainReader{
		useAP:   true,
		tau:     phi,
		minWin:  4096,
		maxWin:  profile.QueueBytes,
		profile: profile,
		avgRec:  1024,
	}
}

func TestChainReaderWindowAdaptation(t *testing.T) {
	cr := testChainReader()
	recSize := 512

	// Walk a chain downward with gaps well below τ: the window must open and
	// grow geometrically up to the cap.
	addr := uint64(100 << 20)
	cr.adapt(addr, recSize)
	if cr.window != 0 {
		t.Fatalf("window opened after a single record: %d", cr.window)
	}
	prev := 0
	for i := 0; i < 16; i++ {
		addr -= uint64(recSize) + cr.tau/4 // gap = τ/4, locality
		cr.adapt(addr, recSize)
		if cr.window < prev {
			t.Fatalf("window shrank under locality: %d -> %d", prev, cr.window)
		}
		prev = cr.window
	}
	if cr.window == 0 {
		t.Fatal("window never opened under sustained locality")
	}
	if cr.window > cr.maxWin {
		t.Fatalf("window %d exceeds cap %d", cr.window, cr.maxWin)
	}
	if cr.window != cr.maxWin {
		t.Fatalf("window %d did not reach cap %d after 16 local hops", cr.window, cr.maxWin)
	}

	// One gap far above τ collapses speculation entirely.
	addr -= 4 * (cr.tau + uint64(cr.avgRec))
	cr.adapt(addr, recSize)
	if cr.window != 0 {
		t.Fatalf("window survived a non-local gap: %d", cr.window)
	}

	// Locality returning reopens it from the bottom, not the old cap.
	addr -= uint64(recSize) + cr.tau/4
	cr.adapt(addr, recSize)
	if cr.window == 0 || cr.window > cr.minWin*4 {
		t.Fatalf("window after collapse+reopen = %d, want small and non-zero", cr.window)
	}
}

func TestChainReaderObservedLatencyClamp(t *testing.T) {
	cr := testChainReader()

	// Before enough samples the profile's τ rules, whatever the readings say.
	cr.observe(time.Microsecond, 4096)
	if got := cr.effTau(); got != cr.tau {
		t.Fatalf("effTau clamped after 1 sample: %d != %d", got, cr.tau)
	}

	// A device answering far below the profile's random-latency floor (a
	// simulator or RAM-backed store) must shrink both τ and the window cap.
	for i := 0; i < 8; i++ {
		cr.observe(time.Microsecond, 4096)
	}
	if got := cr.effTau(); got >= cr.tau {
		t.Fatalf("effTau %d not clamped below profile τ %d", got, cr.tau)
	}
	if got := cr.effMaxWin(); got >= cr.maxWin {
		t.Fatalf("effMaxWin %d not clamped below profile cap %d", got, cr.maxWin)
	}
	if got := cr.effMaxWin(); got < cr.minWin {
		t.Fatalf("effMaxWin %d below the minimum window %d", got, cr.minWin)
	}

	// A device matching its profile keeps the profile's τ: the EWMA recovers
	// once observed fixed costs sit at (or above) the random-latency floor.
	slow := testChainReader()
	for i := 0; i < 8; i++ {
		slow.observe(slow.profile.RandLatency+slow.profile.SyscallCost, 0)
	}
	if got := slow.effTau(); got != slow.tau {
		t.Fatalf("effTau clamped on an honest device: %d != %d", got, slow.tau)
	}
	if got := slow.effMaxWin(); got != slow.maxWin {
		t.Fatalf("effMaxWin clamped on an honest device: %d != %d", got, slow.maxWin)
	}
}

// buildDeviceStore ingests enough records that most of the log lives on the
// device, returning the store, PSF id, and the number of "spark" records.
func buildDeviceStore(t testing.TB, opts Options, n int) (*Store, psf.ID, int) {
	t.Helper()
	if opts.Device == nil {
		opts.Device = storage.NewMem()
	}
	if opts.PageBits == 0 {
		opts.PageBits = 13 // 8KB pages
	}
	if opts.MemPages == 0 {
		opts.MemPages = 2
	}
	s := openTestStore(t, opts)
	id, _, err := s.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	var batch [][]byte
	for i := 0; i < n; i++ {
		repo := "spark"
		if i%3 != 0 {
			repo = fmt.Sprintf("other%d", i%7)
		} else {
			want++
		}
		batch = append(batch, genEvent(i, "PushEvent", repo))
		if len(batch) == 64 {
			ingestAll(t, s, batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		ingestAll(t, s, batch)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.HeadAddress() <= s.BeginAddress() {
		t.Fatalf("log never spilled to device (head %d)", s.HeadAddress())
	}
	return s, id, want
}

func countScan(t testing.TB, s *Store, id psf.ID, opts ScanOptions) (int, ScanStats) {
	t.Helper()
	got := 0
	st, err := s.Scan(PropertyString(id, "spark"), opts, func(Record) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, st
}

func TestScanSpeculationHitAccounting(t *testing.T) {
	s, id, want := buildDeviceStore(t, Options{}, 1200)

	// Cold adaptive index scan: device hops, correctness, and the IO ledger.
	got, st := countScan(t, s, id, ScanOptions{Mode: ScanForceIndex})
	if got != want {
		t.Fatalf("cold scan matched %d, want %d", got, want)
	}
	if st.IOs == 0 || st.ReadBytes == 0 {
		t.Fatalf("on-device scan reported no I/O: %+v", st)
	}

	// Warm scan: the page cache holds the chain's pages now, so hops resolve
	// without device reads and the hits surface in the stats.
	got, st = countScan(t, s, id, ScanOptions{Mode: ScanForceIndex})
	if got != want {
		t.Fatalf("warm scan matched %d, want %d", got, want)
	}
	if st.PrefetchHits == 0 {
		t.Fatalf("warm scan recorded no prefetch/cache hits: %+v", st)
	}
	if st.PageCacheHits == 0 {
		t.Fatalf("warm scan recorded no page-cache hits: %+v", st)
	}

	// The no-prefetch baseline must not touch the cache accounting.
	got, st = countScan(t, s, id, ScanOptions{Mode: ScanIndexNoPrefetch})
	if got != want {
		t.Fatalf("no-prefetch scan matched %d, want %d", got, want)
	}
	if st.PageCacheHits != 0 {
		t.Fatalf("no-prefetch scan used the page cache: %+v", st)
	}
}

func TestScanFaultDeviceInjectedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps on every device read")
	}
	// A device that genuinely stalls each read: the observed fixed cost sits
	// near the profile floor, so the clamp must stay inert and adaptive
	// prefetching must still return exactly the right records.
	dev := storage.NewFaultDevice(nil, storage.FaultConfig{ReadDelay: 200 * time.Microsecond})
	s, id, want := buildDeviceStore(t, Options{Device: dev, PageCachePages: -1, HotChainEntries: -1}, 600)

	got, st := countScan(t, s, id, ScanOptions{Mode: ScanForceIndex})
	if got != want {
		t.Fatalf("scan over slow device matched %d, want %d", got, want)
	}
	if st.IOs == 0 {
		t.Fatalf("scan over slow device reported no I/O: %+v", st)
	}
	if dev.Stats().Reads == 0 {
		t.Fatal("fault device observed no reads")
	}
}

func TestPageCacheConcurrentScanTruncate(t *testing.T) {
	s, id, _ := buildDeviceStore(t, Options{}, 1500)
	tail := s.TailAddress()
	begin := s.BeginAddress()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(Record) bool { return true }); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceFull, Parallelism: 2}, func(Record) bool { return true }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Ratchet the truncation point forward while scans run: every step drops
	// cached pages and hot chains below the floor.
	span := tail - begin
	for i := 1; i <= 8; i++ {
		if err := s.TruncateUntil(begin + span*uint64(i)/16); err != nil {
			t.Error(err)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Post-truncation scans only surface records above the floor.
	floor := s.TruncatedUntil()
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{}, func(r Record) bool {
		if r.Address < floor {
			t.Errorf("record %d below truncation floor %d", r.Address, floor)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHotChainReplayCorrectness(t *testing.T) {
	s, id, want := buildDeviceStore(t, Options{}, 1200)

	// Repeated probes: first arms the placeholder, second installs, third
	// replays from the memoized links. Results must never change.
	for i := 0; i < 5; i++ {
		got, _ := countScan(t, s, id, ScanOptions{Mode: ScanForceIndex})
		if got != want {
			t.Fatalf("scan %d matched %d, want %d", i, got, want)
		}
	}
	if s.hotchain == nil {
		t.Fatal("hot-chain cache disabled in default options")
	}
	hs := s.hotchain.stats()
	if hs.Installs == 0 {
		t.Fatalf("no hot-chain installs after repeated probes: %+v", hs)
	}
	if hs.Hits == 0 {
		t.Fatalf("no hot-chain replays after repeated probes: %+v", hs)
	}

	// Truncating must drop below-floor links from replays too.
	mid := s.BeginAddress() + (s.TailAddress()-s.BeginAddress())/2
	if err := s.TruncateUntil(mid); err != nil {
		t.Fatal(err)
	}
	floor := s.TruncatedUntil()
	for i := 0; i < 3; i++ {
		got := 0
		if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex}, func(r Record) bool {
			if r.Address < floor {
				t.Fatalf("replayed record %d below floor %d", r.Address, floor)
			}
			got++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if got >= want {
			t.Fatalf("post-truncation scan matched %d, want fewer than %d", got, want)
		}
	}
}

func TestFastFullScanEquivalence(t *testing.T) {
	// The PSF is registered before any ingestion, so its index covers the
	// whole log and ScanForceFull takes the pointer-matching fast path. Its
	// results must be identical to the index scan and to the parse-based
	// full scan over the residual (index-incomplete) store.
	s, id, want := buildDeviceStore(t, Options{}, 900)

	if !s.rangeIndexComplete(id, s.BeginAddress(), s.TailAddress()) {
		t.Fatal("index not complete over the whole log")
	}

	fullAddrs := map[uint64]bool{}
	gotFull, st := 0, ScanStats{}
	st, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceFull}, func(r Record) bool {
		gotFull++
		fullAddrs[r.Address] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotFull != want {
		t.Fatalf("fast full scan matched %d, want %d", gotFull, want)
	}
	if st.Visited == 0 {
		t.Fatalf("fast full scan visited nothing: %+v", st)
	}

	gotIdx := 0
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceIndex}, func(r Record) bool {
		gotIdx++
		if !fullAddrs[r.Address] {
			t.Fatalf("index scan surfaced %d, absent from full scan", r.Address)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if gotIdx != gotFull {
		t.Fatalf("index scan matched %d, full scan %d", gotIdx, gotFull)
	}

	// Parallel fast path agrees with the serial one.
	gotPar := 0
	if _, err := s.Scan(PropertyString(id, "spark"), ScanOptions{Mode: ScanForceFull, Parallelism: 4}, func(r Record) bool {
		gotPar++
		if !fullAddrs[r.Address] {
			t.Fatalf("parallel full scan surfaced %d, absent from serial scan", r.Address)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if gotPar != gotFull {
		t.Fatalf("parallel full scan matched %d, serial %d", gotPar, gotFull)
	}

	// A store whose PSF was registered mid-stream exercises the parse path
	// over the uncovered prefix; counts must match a store-independent
	// expectation (every record is visible, so: same generator, same count).
	s2 := openTestStore(t, Options{Device: storage.NewMem(), PageBits: 13, MemPages: 2})
	var batch [][]byte
	want2 := 0
	for i := 0; i < 900; i++ {
		repo := "spark"
		if i%3 != 0 {
			repo = fmt.Sprintf("other%d", i%7)
		} else {
			want2++
		}
		batch = append(batch, genEvent(i, "PushEvent", repo))
	}
	half := len(batch) / 2
	ingestAll(t, s2, batch[:half])
	id2, _, err := s2.RegisterPSF(psf.Projection("repo.name"))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s2, batch[half:])
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	got2 := 0
	if _, err := s2.Scan(PropertyString(id2, "spark"), ScanOptions{Mode: ScanForceFull}, func(Record) bool {
		got2++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got2 != want2 {
		t.Fatalf("parse-path full scan matched %d, want %d", got2, want2)
	}
}

func TestPageSummarySkipsAbsentProperty(t *testing.T) {
	s, id, _ := buildDeviceStore(t, Options{}, 1200)
	if s.summaries == nil {
		t.Fatal("page summaries disabled in default options")
	}
	if s.summaries.stats().Pages == 0 {
		t.Fatal("no page summaries built at flush time")
	}

	// A value that appears in no record: every summarized on-device page
	// should be skipped without reading it.
	got := 0
	st, err := s.Scan(PropertyString(id, "no-such-repo"), ScanOptions{Mode: ScanForceFull}, func(Record) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("absent value matched %d records", got)
	}
	if st.BloomSkippedPages == 0 {
		t.Fatalf("no pages skipped via summaries: %+v", st)
	}
}

func TestCacheStatsSnapshot(t *testing.T) {
	s, id, _ := buildDeviceStore(t, Options{}, 900)
	countScan(t, s, id, ScanOptions{Mode: ScanForceIndex})
	countScan(t, s, id, ScanOptions{Mode: ScanForceIndex})

	cs := s.CacheStats()
	if !cs.PageCacheEnabled || !cs.SummariesEnabled || !cs.HotChainsEnabled {
		t.Fatalf("read-path layers disabled by default: %+v", cs)
	}
	if cs.PageCache.Fills == 0 {
		t.Fatalf("page cache never filled: %+v", cs.PageCache)
	}
	if cs.Summaries.Pages == 0 {
		t.Fatalf("no summaries: %+v", cs.Summaries)
	}

	off := openTestStore(t, Options{PageCachePages: -1, HotChainEntries: -1, DisablePageSummaries: true})
	cso := off.CacheStats()
	if cso.PageCacheEnabled || cso.SummariesEnabled || cso.HotChainsEnabled {
		t.Fatalf("disabled layers report enabled: %+v", cso)
	}
}
