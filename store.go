// Package fishstore is a from-scratch Go implementation of FishStore (Xie,
// Chandramouli, Li, Kossmann — SIGMOD 2019): a concurrent, latch-free
// storage layer for flexible-schema data that combines fast partial parsing
// with a hash-based primary subset index over dynamically registered
// predicated subset functions (PSFs).
//
// A Store ingests raw records (JSON, CSV, or anything a parser.Factory
// understands) into an append-only hybrid log. Applications register PSFs —
// field projections, predicates, range buckets, or custom functions — and
// FishStore threads every matching record onto a per-(PSF, value) hash
// chain collocated with the data. Subset retrieval combines index scans
// (with adaptive prefetching on storage) and full scans, guided by the safe
// registration boundaries of on-demand indexing.
//
// Basic usage:
//
//	store, _ := fishstore.Open(fishstore.Options{})
//	id, _, _ := store.RegisterPSF(psf.Projection("repo.name"))
//	sess := store.NewSession()
//	sess.Ingest(batchOfJSONRecords)
//	sess.Close()
//	store.Scan(fishstore.PropertyString(id, "spark"), fishstore.ScanOptions{},
//	    func(r fishstore.Record) bool { use(r.Payload); return true })
package fishstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fishstore/internal/epoch"
	"fishstore/internal/expr"
	"fishstore/internal/hashtable"
	"fishstore/internal/hlog"
	"fishstore/internal/introspect"
	"fishstore/internal/metrics"
	"fishstore/internal/pagecache"
	"fishstore/internal/parser"
	"fishstore/internal/psf"
	"fishstore/internal/storage"
	"fishstore/internal/telemetry"
	"fishstore/internal/trace"
)

// Store is a FishStore instance. All methods are safe for concurrent use;
// ingestion goes through per-worker Sessions.
type Store struct {
	opts     Options
	epoch    *epoch.Manager
	log      *hlog.Log
	table    *hashtable.Table
	registry *psf.Registry
	pf       parser.Factory
	metrics  *storeMetrics

	// tracer is the span layer (nil = tracing off); plabels holds the
	// prebuilt pprof label sets (nil = no profiler attribution).
	tracer  *trace.Tracer
	plabels *profileLabels

	// pcache is the read-through cache of immutable on-device log pages
	// (nil when disabled); summaries holds the per-page PSF membership
	// bloom filters built at flush time (nil when disabled); hotchain
	// memoizes the link layout of repeatedly probed chains (nil when
	// disabled).
	pcache    *pagecache.Cache
	summaries *pageSummaries
	hotchain  *hotChainCache

	// tele is the workload-attribution collector (nil when disabled):
	// per-operation latency sketches plus PSF / property / tenant heavy
	// hitters. watchdog evaluates Options.SLO targets against it (nil when
	// no SLO is configured).
	tele     *telemetry.Collector
	watchdog *telemetry.Watchdog

	subs subscriptions

	ingestedRecords atomic.Int64
	ingestedBytes   atomic.Int64
	indexedProps    atomic.Int64
	invalidated     atomic.Int64 // records abandoned by badCAS reallocation
	truncatedUntil  atomic.Uint64

	// scanLog retains the last N scan decisions (Φ inputs, segment split,
	// observed work) for /debug/fishstore/scan; nil when disabled.
	scanLog *introspect.Ring[introspect.ScanDecision]
	scanSeq atomic.Uint64

	// lastChain publishes the most recent chain sample (SampleChains).
	lastChain atomic.Pointer[introspect.ChainSnapshot]

	// ckptMu is the checkpoint barrier: ingestion batches hold it shared,
	// Checkpoint holds it exclusively while taking its cut.
	ckptMu sync.RWMutex

	// degraded flips (once, sticky) when a permanent write/sync failure
	// proves the device can no longer persist the log. The store then serves
	// reads only: Ingest/Checkpoint/Flush return ErrDegraded.
	degraded      atomic.Bool
	degradedCause atomic.Pointer[string]

	// logFull flips when an ENOSPC-class flush failure fills the device.
	// Unlike degraded it is recoverable: RecoverLogSpace (manual, or
	// automatic with Options.Retention.AutoRecover) truncates retired log
	// prefix, reclaims the space, and clears the flag.
	logFull           atomic.Bool
	logFullCause      atomic.Pointer[string]
	logFullRecoveries atomic.Int64
	reclaimMu         sync.Mutex // serializes RecoverLogSpace attempts

	// gov is the admission-control governor (nil when Options.Limits unset).
	gov *governor

	mu     sync.Mutex
	closed bool
}

// initMetrics resolves the registry (explicit option, process default, or
// disabled), configures tracing, and — when enabled — wraps the device so
// every read/write reports a latency observation. It mutates o in place and
// must run before the hybrid log is built.
func initMetrics(o *Options) *storeMetrics {
	reg := o.Metrics
	if reg == nil {
		reg = defaultRegistry.Load()
	}
	if reg == nil {
		reg = metrics.NewDisabled()
	}
	var flight *introspect.FlightRecorder
	if o.FlightRecorderSize > 0 {
		// The flight recorder becomes the registry's sink and tees every
		// event to the configured TraceSink. When several stores share a
		// registry, the last store opened provides the recorder.
		flight = introspect.NewFlightRecorder(o.FlightRecorderSize, o.TraceSink)
		reg.SetTraceSink(flight)
	} else if o.TraceSink != nil {
		reg.SetTraceSink(o.TraceSink)
	}
	if o.SlowOpThreshold > 0 {
		reg.SetSlowOpThreshold(o.SlowOpThreshold)
	}
	m := newStoreMetrics(reg)
	m.flight = flight
	if o.IORetry != nil && o.Device != nil {
		// Retry closest to the hardware so instrumentation above it observes
		// one logical operation per log request. The user's OnRetry still
		// fires; the store adds its counter and trace on top.
		policy := *o.IORetry
		userHook := policy.OnRetry
		policy.OnRetry = func(op string, attempt int, err error) {
			m.ioRetries.Inc()
			m.reg.Trace("storage.retry",
				metrics.F("op", op),
				metrics.F("attempt", attempt),
				metrics.F("error", err.Error()))
			if userHook != nil {
				userHook(op, attempt, err)
			}
		}
		o.Device = storage.NewRetrying(o.Device, policy)
	}
	if reg.Enabled() {
		o.Device = storage.NewInstrumented(o.Device, m)
	}
	return m
}

// Open creates a store.
func Open(opts Options) (*Store, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	met := initMetrics(&o)
	tr := resolveTracer(&o)
	em := epoch.New()
	// The store is built before its log so the flush hook can flip it into
	// degraded mode; flushes only start once ingestion does, after Open
	// returns with s.log assigned.
	s := &Store{
		opts:    o,
		epoch:   em,
		table:   hashtable.New(o.TableBuckets, o.OverflowBuckets),
		pf:      o.Parser,
		metrics: met,
		tracer:  tr,
	}
	if o.ProfileLabels {
		s.plabels = newProfileLabels()
	}
	if o.Limits != nil {
		s.gov = newGovernor(o.Limits, met)
	}
	pageWords := 1 << (o.PageBits - 3)
	if o.PageCachePages > 0 {
		s.pcache = pagecache.New(o.PageCachePages, pageWords)
	}
	if o.HotChainEntries > 0 {
		s.hotchain = newHotChainCache(o.HotChainEntries)
	}
	var onSealed func(page uint64, buf []byte)
	if !o.DisablePageSummaries {
		// Summaries are bounded to the page-cache working set plus slack, so
		// a long-lived store doesn't accumulate a filter per flushed page.
		maxPages := 4 * o.PageCachePages
		if maxPages < 256 {
			maxPages = 256
		}
		s.summaries = newPageSummaries(maxPages, pageWords)
		onSealed = s.summaries.onPageSealed
	}
	log, err := hlog.New(hlog.Config{
		PageBits:      o.PageBits,
		MemPages:      o.MemPages,
		Device:        o.Device,
		Epoch:         em,
		OnFlush:       s.flushHook(),
		OnPageSealed:  onSealed,
		Tracer:        tr,
		ProfileLabels: o.ProfileLabels,
	})
	if err != nil {
		return nil, err
	}
	s.log = log
	s.registry = psf.NewRegistry(em, log.TailAddress)
	s.wireInternalMetrics()
	s.wireSpanTee()
	s.registerIntrospection()
	s.wireWorkloadTelemetry()
	return s, nil
}

// flushHook returns the hlog OnFlush hook: a trace event per completed page
// flush (giving the flight recorder a durability timeline leading up to a
// crash), and — on a flush failure — the transition into degraded read-only
// mode. A failed background flush means the device permanently refused a
// write (transient faults were already retried below, when IORetry is set),
// so the store stops pretending it can persist instead of surfacing the
// sticky error at the next page boundary.
func (s *Store) flushHook() func(page uint64, err error) {
	return func(page uint64, err error) {
		if err != nil {
			s.metrics.reg.Trace("hlog.flush",
				metrics.F("page", page), metrics.F("error", err.Error()))
			if storage.IsNoSpace(err) {
				// A full disk is a managed condition, not a dead device:
				// the sealed page is retained in its frame and re-driven by
				// RecoverLogSpace after retention truncation reclaims room.
				s.enterLogFull(fmt.Errorf("page %d flush: %w", page, err))
				return
			}
			s.enterDegraded(fmt.Errorf("page %d flush: %w", page, err))
			return
		}
		s.metrics.reg.Trace("hlog.flush", metrics.F("page", page))
	}
}

// ErrDegraded is returned by Ingest, Checkpoint, and Flush once the store
// has entered degraded read-only mode after a permanent write or sync
// failure. Reads, scans, and verification keep working; the only way out is
// to fix the device and reopen the store.
var ErrDegraded = errors.New("fishstore: store degraded to read-only after permanent I/O failure")

// enterDegraded flips the store into degraded read-only mode (once; the
// first cause wins and is retained for Stats and introspection).
func (s *Store) enterDegraded(cause error) {
	if cause == nil || !s.degraded.CompareAndSwap(false, true) {
		return
	}
	msg := cause.Error()
	s.degradedCause.Store(&msg)
	s.metrics.reg.Trace("store.degraded", metrics.F("cause", msg))
	if w := s.opts.FlightDumpWriter; w != nil {
		_ = s.DumpFlight(w)
	}
}

// Degraded reports whether the store is in degraded read-only mode, and the
// cause that put it there.
func (s *Store) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	if c := s.degradedCause.Load(); c != nil {
		return true, *c
	}
	return true, ""
}

// wireInternalMetrics attaches counters and trace hooks to the store's
// internal subsystems. Hooks are installed before any concurrent use of the
// subsystems (Open/Recover return the store only afterwards).
func (s *Store) wireInternalMetrics() {
	reg := s.metrics.reg
	if !reg.Enabled() {
		return
	}
	s.epoch.Instrument(s.metrics.epochBumps, s.metrics.epochActions, func(ran int) {
		reg.Trace("epoch.drain",
			metrics.F("actions", ran),
			metrics.F("safe", s.epoch.SafeEpoch()))
	})
	s.table.Instrument(s.metrics.htEntries, s.metrics.htOverflowAdds, func(overflowIdx int) {
		reg.Trace("hashtable.grow", metrics.F("overflow_buckets", overflowIdx))
	})
	s.registry.SetTrace(func(state string, version uint64) {
		reg.Trace("psf."+state, metrics.F("version", version))
	})
	s.registerGaugeFuncs()
}

// Close flushes and closes the store. All sessions must be closed first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	// Stop the SLO watchdog before the log: Stop blocks until the
	// evaluation goroutine has exited, so no tick can observe a closing
	// store.
	s.watchdog.Stop()
	return s.log.Close()
}

// RegisterPSF registers a PSF and blocks until indexing is active on all
// ingestion workers. The result carries the safe registration boundary:
// records at addresses >= it are guaranteed indexed.
func (s *Store) RegisterPSF(def psf.Definition) (psf.ID, psf.Result, error) {
	return s.registry.Register(def)
}

// DeregisterPSF stops indexing for id. Records below the returned safe
// deregistration boundary remain index-covered.
func (s *Store) DeregisterPSF(id psf.ID) (psf.Result, error) {
	return s.registry.Deregister(id)
}

// ApplyPSFChanges applies a batch of registrations/deregistrations
// atomically (one run of the Fig 7 protocol).
func (s *Store) ApplyPSFChanges(changes []psf.Change) (psf.Result, error) {
	return s.registry.Apply(changes)
}

// PSFByName returns the id of the active PSF with the given name.
func (s *Store) PSFByName(name string) (psf.ID, bool) { return s.registry.LookupByName(name) }

// IndexedIntervals returns the log intervals over which id's index is
// guaranteed complete.
func (s *Store) IndexedIntervals(id psf.ID) []psf.Interval { return s.registry.Intervals(id) }

// TailAddress returns the current log tail.
func (s *Store) TailAddress() uint64 { return s.log.TailAddress() }

// BeginAddress returns the first record address.
func (s *Store) BeginAddress() uint64 { return hlog.BeginAddress }

// HeadAddress returns the in-memory boundary: addresses >= it are served
// from the circular buffer.
func (s *Store) HeadAddress() uint64 { return s.log.HeadAddress() }

// FlushedUntil returns the durable boundary.
func (s *Store) FlushedUntil() uint64 { return s.log.FlushedUntil() }

// Property identifies a logical group of records: a PSF and a value in its
// domain (§2.1, Definition 2.2).
type Property struct {
	PSF   psf.ID
	Value expr.Value
}

// PropertyBool builds a boolean property (f, true/false).
func PropertyBool(id psf.ID, v bool) Property { return Property{PSF: id, Value: expr.BoolVal(v)} }

// PropertyString builds a string-valued property.
func PropertyString(id psf.ID, v string) Property {
	return Property{PSF: id, Value: expr.StringVal(v)}
}

// PropertyNumber builds a numeric property.
func PropertyNumber(id psf.ID, v float64) Property {
	return Property{PSF: id, Value: expr.NumberVal(v)}
}

func (p Property) String() string { return fmt.Sprintf("(psf %d, %s)", p.PSF, p.Value) }

// hash returns the property's hash signature.
func (p Property) hash() uint64 { return psf.PropertyHash(p.PSF, p.Value) }

// Stats is a snapshot of store-level counters.
type Stats struct {
	IngestedRecords    int64
	IngestedBytes      int64
	IndexedProperties  int64
	InvalidatedRecs    int64 // only non-zero in BadCAS mode
	TailAddress        uint64
	LogSizeBytes       uint64 // live footprint: tail - truncation point
	TotalAppendedBytes uint64 // tail - begin: everything ever appended, incl. truncated
	TableStats         hashtable.Stats
	// Degraded is true once a permanent I/O failure has flipped the store
	// into read-only mode; DegradedCause describes the failure.
	Degraded      bool
	DegradedCause string
	// LogFull is true while the store is refusing ingestion because the
	// device is out of space (recoverable via RecoverLogSpace);
	// LogFullRecoveries counts successful recoveries over the store's life.
	LogFull           bool
	LogFullCause      string
	LogFullRecoveries int64
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	live, tail := s.liveLogBytes()
	deg, cause := s.Degraded()
	full, fullCause := s.LogFull()
	return Stats{
		IngestedRecords:    s.ingestedRecords.Load(),
		IngestedBytes:      s.ingestedBytes.Load(),
		IndexedProperties:  s.indexedProps.Load(),
		InvalidatedRecs:    s.invalidated.Load(),
		TailAddress:        tail,
		LogSizeBytes:       live,
		TotalAppendedBytes: tail - hlog.BeginAddress,
		TableStats:         s.table.Stats(),
		Degraded:           deg,
		DegradedCause:      cause,
		LogFull:            full,
		LogFullCause:       fullCause,
		LogFullRecoveries:  s.logFullRecoveries.Load(),
	}
}

// liveLogBytes returns the live log footprint (tail minus truncation point)
// and the tail it used. The truncation point is loaded FIRST: TruncateUntil
// never raises it past the tail it observed, so trunc <= tail holds for any
// later tail read — loading in the other order can observe a tail from
// before a concurrent truncation and underflow the subtraction.
func (s *Store) liveLogBytes() (live, tail uint64) {
	trunc := s.truncatedUntil.Load()
	tail = s.log.TailAddress()
	if trunc < hlog.BeginAddress {
		trunc = hlog.BeginAddress
	}
	if tail < trunc {
		return 0, tail
	}
	return tail - trunc, tail
}

// Device returns the underlying storage device (for experiment harnesses
// that need I/O statistics, e.g. SimSSD counters). Metrics instrumentation
// wrappers are peeled off so callers see the device they configured.
func (s *Store) Device() storage.Device { return storage.Unwrap(s.log.Device()) }

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("fishstore: store closed")

// Flush synchronously persists everything ingested so far (the periodic
// "line of persistence" of Appendix E): on return, FlushedUntil covers the
// tail observed at the time of the call. A write failure here is permanent
// (retries, if configured, already ran below) and degrades the store.
func (s *Store) Flush() error {
	if s.degraded.Load() {
		return ErrDegraded
	}
	if s.logFull.Load() {
		return ErrLogFull
	}
	if err := s.log.FlushTail(); err != nil {
		if storage.IsNoSpace(err) {
			s.enterLogFull(fmt.Errorf("flush tail: %w", err))
			return fmt.Errorf("%w: %v", ErrLogFull, err)
		}
		s.enterDegraded(fmt.Errorf("flush tail: %w", err))
		return err
	}
	return nil
}
